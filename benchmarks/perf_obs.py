"""Overhead and determinism scoreboard for the repro.obs telemetry layer.

Three claims gated here (see ``repro/obs/__init__.py`` invariants):

* **zero cost when unused (poll plane)** — with ``OBS`` disabled, a
  64-watch scatter read through the instrumented :class:`JtagLink`
  must run at the raw probe's rate. The probe sits *below* every
  telemetry tap, so it is the obs-free baseline this layer can never
  touch (``overhead.poll_disabled_ratio``, ceiling-gated);
* **zero cost when unused (interp plane)** — the per-instruction
  interpreter loop carries no telemetry at all, so enabling the full
  registry + tracer must not move the fused counting-loop kernel
  (``overhead.interp_disabled_ratio`` = enabled/disabled wall-clock,
  ceiling-gated: any future per-instruction tap trips this);
* **deterministic export** — two campaigns at the same seed, collected
  into different directories, must export byte-identical Chrome
  trace-event documents (``determinism.export_identical``,
  floor-gated). Export throughput over a kernel spill store is
  recorded as ``export.events_per_sec``.

Writes ``BENCH_obs.json`` (or ``BENCH_obs_quick.json`` under
``--quick``) next to this file.

Usage::

    python benchmarks/perf_obs.py           # full run
    python benchmarks/perf_obs.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import JtagLink
from repro.comm.usb import UsbTransport
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import SerialRunner
from repro.obs import disable, enable
from repro.obs.export import export_campaign, chrome_trace, render_bytes
from repro.rtos.kernel import DtmKernel
from repro.target.assembler import Assembler
from repro.target.board import Board, DebugPort
from repro.target.cpu import Cpu
from repro.target.memory import RAM_BASE, MemoryMap
from repro.tracedb import TraceStore, campaign_store_root
from repro.util.timeunits import ms, sec

WATCHES = 64
FULL_REPS = 40
QUICK_REPS = 5
FULL_ITERS = 200_000
QUICK_ITERS = 50_000
INTERP_REPS = 5  # interleaved off/on pairs, best-of each arm


def watch_addrs(count: int):
    main = [RAM_BASE + i for i in range(count - 2)]
    return main + [RAM_BASE + 1000, RAM_BASE + 1001]


def jtag_pair():
    board = Board()
    probe = JtagProbe(TapController(DebugPort(board)), tck_hz=4_000_000,
                      transport=UsbTransport())
    return probe, JtagLink(probe)


def best_elapsed(fn, arg, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def measure_poll_overhead(reps: int):
    """Instrumented link vs the obs-free probe beneath it, OBS disabled."""
    disable()
    addrs = watch_addrs(WATCHES)
    probe, link = jtag_pair()
    probe_t = best_elapsed(probe.read_scatter_timed, addrs, reps)
    link_t = best_elapsed(link.read_scatter, addrs, reps)
    return {
        "watches": WATCHES,
        "probe_poll_us": round(probe_t * 1e6, 1),
        "link_poll_us": round(link_t * 1e6, 1),
        "poll_disabled_ratio": round(link_t / probe_t, 3),
    }


def counting_loop(iterations: int):
    counter = RAM_BASE
    asm = Assembler()
    asm.label("top")
    asm.emit("LOAD", counter)
    asm.emit("PUSH", 1)
    asm.emit("ADD")
    asm.emit("STORE", counter)
    asm.emit("LOAD", counter)
    asm.emit("PUSH", iterations)
    asm.emit("LT")
    asm.emit_jump("JNZ", "top")
    asm.emit("HALT")
    return asm.assemble()


def run_interp(iterations: int):
    memory = MemoryMap(16)
    cpu = Cpu(memory, fuse=True)
    cpu.load(counting_loop(iterations))
    cpu.reset_task(0)
    start = time.perf_counter()
    cpu.run(max_instructions=10 * iterations)
    wall_s = time.perf_counter() - start
    assert memory.peek(RAM_BASE) == iterations
    return wall_s


def measure_interp_overhead(iterations: int, reps: int):
    """The fused fast loop with the full registry+tracer on vs off.

    Arms are interleaved (off, on, off, on, ...) so clock/thermal drift
    over the run cancels instead of biasing whichever arm went first.
    """
    disabled_t = enabled_t = float("inf")
    for _ in range(reps):
        disable()
        disabled_t = min(disabled_t, run_interp(iterations))
        enable()
        enabled_t = min(enabled_t, run_interp(iterations))
    disable()
    return {
        "iterations": iterations,
        "disabled_wall_s": round(disabled_t, 4),
        "enabled_wall_s": round(enabled_t, 4),
        "interp_disabled_ratio": round(enabled_t / disabled_t, 3),
    }


def measure_export(tmp_dir: str, duration_us: int):
    """Export throughput over a kernel spill store (modeled-us slices)."""
    disable()
    system = traffic_light_system()
    firmware = generate_firmware(system, InstrumentationPlan.none())
    store = TraceStore(os.path.join(tmp_dir, "spill"), segment_events=4096)
    kernel = DtmKernel(system, firmware, record_capacity=256,
                       record_spill=store)
    kernel.run(duration_us)
    store.flush()
    events = store.event_count
    start = time.perf_counter()
    data = render_bytes(chrome_trace(store=store))
    wall_s = time.perf_counter() - start
    return {
        "store_events": events,
        "export_bytes": len(data),
        "events_per_sec": int(events / wall_s) if wall_s else 0,
    }


def campaign_export(tmp_dir: str, name: str, duration_us: int) -> bytes:
    trace_dir = os.path.join(tmp_dir, name)
    run_campaign(traffic_light_system, traffic_light_monitor_suite,
                 traffic_light_code_watches, runner=SerialRunner(),
                 trace_dir=trace_dir, design_kinds=("wrong_target",),
                 impl_kinds=("inverted_branch",), seeds=(1,),
                 duration_us=duration_us)
    return export_campaign(campaign_store_root(trace_dir))


def measure_determinism(tmp_dir: str, duration_us: int):
    disable()
    first = campaign_export(tmp_dir, "a", duration_us)
    again = campaign_export(tmp_dir, "b", duration_us)
    return {
        "export_identical": int(first == again),
        "export_bytes": len(first),
    }


def main() -> None:
    quick = "--quick" in sys.argv
    reps = QUICK_REPS if quick else FULL_REPS
    iters = QUICK_ITERS if quick else FULL_ITERS
    horizon = sec(1) if quick else sec(4)

    measure_poll_overhead(1)  # warm up caches and the allocator
    run_interp(QUICK_ITERS)

    tmp_dir = tempfile.mkdtemp(prefix="perf_obs_")
    try:
        results = {
            "overhead": {
                **measure_poll_overhead(reps),
                **measure_interp_overhead(iters, INTERP_REPS),
            },
            "export": measure_export(tmp_dir, sec(30) if quick else sec(120)),
            "determinism": measure_determinism(tmp_dir, horizon),
            "quick": quick,
        }
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        disable()
    assert results["determinism"]["export_identical"] == 1

    name = "BENCH_obs_quick.json" if quick else "BENCH_obs.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    over = results["overhead"]
    print(f"64-watch poll: probe {over['probe_poll_us']}us, "
          f"instrumented link {over['link_poll_us']}us "
          f"(disabled ratio {over['poll_disabled_ratio']}x)")
    print(f"fused interp: off {over['disabled_wall_s']}s, "
          f"on {over['enabled_wall_s']}s "
          f"(ratio {over['interp_disabled_ratio']}x)")
    exp = results["export"]
    print(f"export: {exp['store_events']} events -> {exp['export_bytes']}B "
          f"at {exp['events_per_sec']}/s")
    det = results["determinism"]
    print(f"determinism: identical={det['export_identical']} "
          f"({det['export_bytes']}B campaign export)")
    print(f"-> {out}")


if __name__ == "__main__":
    main()
