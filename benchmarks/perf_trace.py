"""Trace-store throughput, checkpointed-seek latency, and flat-memory proof.

The scoreboard for the spill-to-disk trace subsystem:

* **append events/sec** — wall-clock rate of spilling synthetic trace
  events through ``ExecutionTrace(capacity=256, spill=TraceStore(...))``
  (binary codec, segment rotation included);
* **seek latency** — wall-clock ``ReplayPlayer.seek`` into a stored
  history with checkpoints vs the same seek forced linear, plus the
  *deterministic* ``max_tail_events`` (events actually re-applied after
  restoring the nearest checkpoint — bounded by ``checkpoint_every`` by
  construction, enforced as a FLOORS ceiling);
* **memory ratio** — tracemalloc peak while recording N vs 4N events at
  ``capacity=256``: flat-memory means the ratio stays ~1.0 no matter how
  much history lands on disk.

Writes ``BENCH_trace.json`` next to this file so the trace subsystem's
perf trajectory is tracked across PRs.

Usage::

    python benchmarks/perf_trace.py           # full run
    python benchmarks/perf_trace.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.comm.protocol import Command, CommandKind
from repro.engine.replay import ReplayPlayer
from repro.engine.trace import ExecutionTrace
from repro.gdm.model import GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.reactions import ReactionKind, ReactionRecord
from repro.tracedb import StoredTrace, TraceStore, build_checkpoints

CAPACITY = 256
SEGMENT_EVENTS = 4096
CHECKPOINT_EVERY = 512
FULL_EVENTS = 50_000
QUICK_EVENTS = 8_000


def make_gdm() -> GdmModel:
    gdm = GdmModel("bench")
    box = PatternSpec(PatternKind.RECTANGLE)
    for i in range(4):
        gdm.add_element(f"S{i}", box, f"state:a.m.S{i}", group="a.m")
    gdm.add_element("x", box, "signal:x")
    return gdm


def synth_event(gdm: GdmModel, i: int):
    t = i * 7
    if i % 3 == 0:
        path = f"state:a.m.S{(i // 3) % 4}"
        element = gdm.element_by_path(path)
        return (Command(CommandKind.STATE_ENTER, path, 1,
                        t_target=t, t_host=t + 2),
                [ReactionRecord(ReactionKind.HIGHLIGHT, element.id, path,
                                "highlight", t + 2)])
    element = gdm.element_by_path("signal:x")
    return (Command(CommandKind.SIG_UPDATE, "signal:x", i,
                    t_target=t, t_host=t + 2),
            [ReactionRecord(ReactionKind.ANNOTATE, element.id, "signal:x",
                            f"value={i}", t + 2)])


def record_spilled(root: str, n: int, checkpoint_every=None,
                   prebuild: bool = True) -> tuple:
    """Record n synthetic events through a spilling ring; returns
    (store, wall seconds).

    ``prebuild`` materializes the event list up front so the timed loop
    measures only the spill path; the memory benchmark streams instead
    (``prebuild=False``) so tracemalloc sees the trace's footprint, not
    the workload generator's.
    """
    gdm = make_gdm()
    store = TraceStore(root, segment_events=SEGMENT_EVENTS, codec="binary",
                       checkpoint_every=checkpoint_every)
    trace = ExecutionTrace(capacity=CAPACITY, spill=store)
    events = ([synth_event(gdm, i) for i in range(n)] if prebuild
              else (synth_event(gdm, i) for i in range(n)))
    start = time.perf_counter()
    for command, reactions in events:
        trace.record(command, reactions, "REACTING")
    store.flush()
    elapsed = time.perf_counter() - start
    assert trace.dropped == 0
    return store, elapsed


def measure_append(base: str, n: int) -> dict:
    store, elapsed = record_spilled(os.path.join(base, "append"), n)
    store.close()
    return {
        "events": n,
        "codec": "binary",
        "segment_events": SEGMENT_EVENTS,
        "events_per_sec": round(n / max(elapsed, 1e-9), 1),
    }


def measure_seek(base: str, n: int) -> dict:
    store, _ = record_spilled(os.path.join(base, "seek"), n)
    gdm = make_gdm()
    build_checkpoints(store, gdm, every=CHECKPOINT_EVERY)
    view = StoredTrace(store)
    positions = [n // 4, n // 2, (3 * n) // 4, n - 1]

    def bench(use_checkpoints: bool):
        total, max_tail = 0.0, 0
        for position in positions:
            player = ReplayPlayer(view, make_gdm())
            start = time.perf_counter()
            applied = player.seek(position, use_checkpoints=use_checkpoints)
            total += time.perf_counter() - start
            max_tail = max(max_tail, applied)
        return (total / len(positions)) * 1000, max_tail

    ck_ms, max_tail = bench(True)
    linear_ms, _ = bench(False)
    store.close()
    return {
        "events": n,
        "checkpoint_every": CHECKPOINT_EVERY,
        "probes": len(positions),
        "seek_ms_checkpointed": round(ck_ms, 3),
        "seek_ms_linear": round(linear_ms, 3),
        "speedup": round(linear_ms / max(ck_ms, 1e-9), 1),
        "max_tail_events": max_tail,
    }


def measure_memory(base: str, n: int) -> dict:
    def peak_kb(count: int, tag: str) -> float:
        tracemalloc.start()
        store, _ = record_spilled(os.path.join(base, f"mem-{tag}"), count,
                                  prebuild=False)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        store.close()
        return peak / 1024

    small = peak_kb(n, "1x")
    large = peak_kb(4 * n, "4x")
    return {
        "capacity": CAPACITY,
        "events_1x": n,
        "peak_kb_1x": round(small, 1),
        "peak_kb_4x": round(large, 1),
        "ratio": round(large / max(small, 1e-9), 3),
    }


def main() -> None:
    quick = "--quick" in sys.argv
    n = QUICK_EVENTS if quick else FULL_EVENTS
    base = tempfile.mkdtemp(prefix="perf_trace_")
    try:
        results = {
            "append": measure_append(base, n),
            "seek": measure_seek(base, n),
            "memory": measure_memory(base, max(2000, n // 8)),
            "quick": quick,
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)

    assert results["seek"]["max_tail_events"] <= CHECKPOINT_EVERY
    name = "BENCH_trace_quick.json" if quick else "BENCH_trace.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"append: {results['append']['events_per_sec']} events/sec "
          f"({n} events, binary codec)")
    print(f"seek:   {results['seek']['seek_ms_checkpointed']}ms checkpointed "
          f"vs {results['seek']['seek_ms_linear']}ms linear "
          f"({results['seek']['speedup']}x, tail <= "
          f"{results['seek']['max_tail_events']} events)")
    print(f"memory: peak {results['memory']['peak_kb_1x']}KB @1x vs "
          f"{results['memory']['peak_kb_4x']}KB @4x "
          f"(ratio {results['memory']['ratio']})")
    print(f"-> {out}")


if __name__ == "__main__":
    main()
