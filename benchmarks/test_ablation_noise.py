"""Ablation: active-channel robustness under serial-line noise.

The frame protocol's checksum + resynchronization exist because embedded
serial links are noisy. This ablation sweeps the per-byte error rate and
measures delivered vs. lost commands — the debugger must degrade
gracefully (lose events), never corrupt the debug model or crash.
"""

from repro.comdes.examples import traffic_light_system
from repro.comm.rs232 import Rs232Link
from repro.engine.session import DebugSession
from repro.experiments.harness import ResultTable, save_artifact
from repro.util.timeunits import ms

ERROR_RATES = (0.0, 0.002, 0.01, 0.05)
RUN_US = ms(100) * 40


def run_noisy(rate):
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup()
    channel = session.channel.children[0]
    channel.link = Rs232Link(byte_error_rate=rate, seed=99)
    session.run(RUN_US)
    return session, channel


def test_ablation_line_noise(benchmark):
    """Delivery ratio vs byte error rate; model integrity assertions."""
    table = ResultTable(
        "Ablation — active channel under line noise (4s, traffic light)",
        ["byte error rate", "frames sent", "delivered", "lost",
         "checksum errors", "engine state"],
    )
    delivered_by_rate = {}
    for rate in ERROR_RATES:
        session, channel = run_noisy(rate)
        lost = channel.frames_sent - channel.commands_delivered
        delivered_by_rate[rate] = channel.commands_delivered
        table.add_row(f"{rate:.3f}", channel.frames_sent,
                      channel.commands_delivered, lost,
                      channel.decoder.checksum_errors,
                      session.engine.state.name)
        # Graceful degradation: the engine survives, the model still shows
        # exactly one highlighted state (or none if every frame died).
        highlighted = [e for e in session.gdm.elements.values()
                       if e.highlighted]
        assert len(highlighted) <= 1
        assert session.engine.state.name == "WAITING"
    table.print()
    save_artifact("ablation_noise.txt", table.render())

    # More noise, fewer delivered commands; clean line loses nothing.
    assert delivered_by_rate[0.0] >= delivered_by_rate[0.01] \
        >= delivered_by_rate[0.05]
    session, channel = run_noisy(0.0)
    assert channel.commands_delivered == channel.frames_sent

    benchmark(run_noisy, 0.01)
