"""Gate: fail if any benchmark fell below its recorded floor.

Reads ``FLOORS.json`` and checks each entry against the matching
``BENCH_*.json`` scoreboard (or ``BENCH_*_quick.json`` with ``--quick``,
the CI smoke files). Floors assert a minimum on a measured rate;
ceilings assert a maximum on a modeled cost. Exits non-zero listing
every violation, so CI turns a perf regression into a red build.

Usage::

    python benchmarks/check_floors.py           # check full-run scoreboards
    python benchmarks/check_floors.py --quick   # check CI smoke files
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def dig(data, dotted_path: str):
    """Walk a dotted path ('watches.64.polls_per_sec') through dicts."""
    node = data
    for part in dotted_path.split("."):
        node = node[part]
    return node


def main() -> int:
    quick = "--quick" in sys.argv
    with open(os.path.join(HERE, "FLOORS.json"), encoding="utf-8") as handle:
        floors = json.load(handle)

    failures = []
    for name, spec in floors.items():
        stem = spec.get("file", name)
        filename = f"{stem}_quick.json" if quick else f"{stem}.json"
        path = os.path.join(HERE, filename)
        if not os.path.exists(path):
            failures.append(f"{name}: scoreboard {filename} missing")
            continue
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            value = dig(data, spec["metric"])
        except (KeyError, TypeError):
            failures.append(f"{name}: metric {spec['metric']!r} "
                            f"not found in {filename}")
            continue
        if "floor" not in spec and "ceiling" not in spec:
            failures.append(f"{name}: spec has neither floor nor ceiling")
            continue
        violated = False
        if "floor" in spec and value < spec["floor"]:
            failures.append(f"{name}: {spec['metric']} = {value} "
                            f"below floor {spec['floor']}")
            violated = True
        if "ceiling" in spec and value > spec["ceiling"]:
            failures.append(f"{name}: {spec['metric']} = {value} "
                            f"above ceiling {spec['ceiling']}")
            violated = True
        if not violated:
            bounds = ", ".join(f"{key} {spec[key]}"
                               for key in ("floor", "ceiling") if key in spec)
            print(f"ok: {name} {spec['metric']} = {value} ({bounds})")

    if failures:
        for failure in failures:
            print(f"FLOOR VIOLATION - {failure}", file=sys.stderr)
        return 1
    print("all benchmark floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
