"""Gate: fail if any benchmark fell below its recorded floor.

Reads ``FLOORS.json`` and checks each entry against the matching
``BENCH_*.json`` scoreboard (or ``BENCH_*_quick.json`` with ``--quick``,
the CI smoke files). Floors assert a minimum on a measured rate;
ceilings assert a maximum on a modeled cost. Exits non-zero listing
every violation, so CI turns a perf regression into a red build.

Usage::

    python benchmarks/check_floors.py           # check full-run scoreboards
    python benchmarks/check_floors.py --quick   # check CI smoke files
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def dig(data, dotted_path: str):
    """Walk a dotted path ('watches.64.polls_per_sec') through dicts."""
    node = data
    for part in dotted_path.split("."):
        node = node[part]
    return node


def check(here: str, quick: bool):
    """Evaluate every FLOORS.json entry; returns (ok_lines, failures).

    Every failure mode is a *clean* entry in ``failures`` — including a
    scoreboard metric that is not a number (``null``, a string, a
    nested object...), which used to escape as an uncaught ``TypeError``
    at the comparison and crash the gate instead of reporting it.
    """
    with open(os.path.join(here, "FLOORS.json"), encoding="utf-8") as handle:
        floors = json.load(handle)

    ok_lines = []
    failures = []
    for name, spec in floors.items():
        stem = spec.get("file", name)
        filename = f"{stem}_quick.json" if quick else f"{stem}.json"
        path = os.path.join(here, filename)
        if not os.path.exists(path):
            failures.append(f"{name}: scoreboard {filename} missing")
            continue
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            value = dig(data, spec["metric"])
        except (KeyError, TypeError):
            failures.append(f"{name}: metric {spec['metric']!r} "
                            f"not found in {filename}")
            continue
        if not isinstance(value, (int, float)):
            # bool is numeric enough (parity flags compare fine); None,
            # strings and containers would TypeError at the comparisons
            failures.append(f"{name}: metric {spec['metric']} is "
                            f"non-numeric ({value!r})")
            continue
        if "floor" not in spec and "ceiling" not in spec:
            failures.append(f"{name}: spec has neither floor nor ceiling")
            continue
        violated = False
        if "floor" in spec and value < spec["floor"]:
            failures.append(f"{name}: {spec['metric']} = {value} "
                            f"below floor {spec['floor']}")
            violated = True
        if "ceiling" in spec and value > spec["ceiling"]:
            failures.append(f"{name}: {spec['metric']} = {value} "
                            f"above ceiling {spec['ceiling']}")
            violated = True
        if not violated:
            bounds = ", ".join(f"{key} {spec[key]}"
                               for key in ("floor", "ceiling") if key in spec)
            ok_lines.append(f"ok: {name} {spec['metric']} = {value} ({bounds})")
    return ok_lines, failures


def main() -> int:
    quick = "--quick" in sys.argv
    ok_lines, failures = check(HERE, quick)
    for line in ok_lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"FLOOR VIOLATION - {failure}", file=sys.stderr)
        return 1
    print("all benchmark floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
