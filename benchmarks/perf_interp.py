"""Sustained interpreter throughput on a tight synthetic loop.

Measures instructions/second of ``Cpu.run``'s fast path on a counting
loop whose opcode mix (load/store, immediate, ALU, compare, branch)
resembles generated firmware — which makes it exactly the shape the
superinstruction fusion pass targets. Both decodings are measured:

* ``instr_per_sec`` — fusion off (the plain direct-threaded loop, the
  scoreboard metric since PR 2);
* ``fused_instr_per_sec`` — fusion on (``Cpu.load`` fuses the loop body
  into ALU+STORE / ALU+JNZ superinstruction rows);
* ``fusion_speedup`` — their ratio, the machine-independent gate.

Fusion must be *observably invisible*, so the run also asserts the two
decodings retire identical instruction and cycle counts. The payload
also carries ``opcode_profile`` — the measured per-opcode retirement
counts from ``Cpu.run(profile=...)`` on the same workload, hottest
first — so fusion and batch-tier decisions are grounded in what the
scoreboard loop actually executes. Writes ``BENCH_interp.json`` next to
this file so the perf trajectory of the hot loop is tracked across PRs.

Usage::

    python benchmarks/perf_interp.py           # full run (~4M instructions/rep)
    python benchmarks/perf_interp.py --quick   # CI smoke (~400k instructions)
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.target.assembler import Assembler
from repro.target.cpu import Cpu, StopReason
from repro.target.isa import profile_names
from repro.target.memory import RAM_BASE, MemoryMap

#: loop iterations per rep; 8 instructions each
FULL_ITERS = 500_000
QUICK_ITERS = 50_000
REPS = 5  # best-of: rides out scheduler noise on short reps


def counting_loop(iterations: int):
    """``for i in range(iterations): m[0] = i`` as stack code."""
    counter = RAM_BASE
    asm = Assembler()
    asm.label("top")
    asm.emit("LOAD", counter)
    asm.emit("PUSH", 1)
    asm.emit("ADD")
    asm.emit("STORE", counter)
    asm.emit("LOAD", counter)
    asm.emit("PUSH", iterations)
    asm.emit("LT")
    asm.emit_jump("JNZ", "top")
    asm.emit("HALT")
    return asm.assemble()


def run_once(iterations: int, fuse: bool):
    memory = MemoryMap(16)
    cpu = Cpu(memory, fuse=fuse)
    cpu.load(counting_loop(iterations))
    cpu.reset_task(0)
    start = time.perf_counter()
    result = cpu.run(max_instructions=10 * iterations)
    wall_s = time.perf_counter() - start
    assert result.reason is StopReason.HALTED, result
    assert memory.peek(RAM_BASE) == iterations
    return result, wall_s, cpu


def best_of(iterations: int, fuse: bool):
    """Best rep: (instr_per_sec, result, wall_s, fused_rows)."""
    best = None
    for _ in range(REPS):
        result, wall_s, cpu = run_once(iterations, fuse)
        rate = result.instructions / wall_s
        if best is None or rate > best[0]:
            best = (rate, result, wall_s, cpu.fused_rows)
    return best


def main() -> None:
    quick = "--quick" in sys.argv
    iterations = QUICK_ITERS if quick else FULL_ITERS
    run_once(QUICK_ITERS, fuse=False)  # warm up caches and the allocator
    run_once(QUICK_ITERS, fuse=True)

    plain_rate, plain_result, plain_wall, _ = best_of(iterations, fuse=False)
    fused_rate, fused_result, fused_wall, fused_rows = best_of(
        iterations, fuse=True)

    # measured opcode mix of the scoreboard workload (plain decoded
    # opcodes — what the fusion and batch tiers dispatch on)
    memory = MemoryMap(16)
    cpu = Cpu(memory)
    cpu.load(counting_loop(QUICK_ITERS))
    cpu.reset_task(0)
    counts: dict = {}
    profiled = cpu.run(max_instructions=10 * QUICK_ITERS, profile=counts)
    assert profiled.reason is StopReason.HALTED, profiled
    opcode_profile = profile_names(counts)

    # the timing-identity invariant, enforced on the scoreboard workload:
    # fusion changes wall time, never the architectural counters
    assert fused_result.instructions == plain_result.instructions, (
        fused_result, plain_result)
    assert fused_result.cycles == plain_result.cycles, (
        fused_result, plain_result)

    best = {
        "instr_per_sec": round(plain_rate),
        "fused_instr_per_sec": round(fused_rate),
        "fusion_speedup": round(fused_rate / plain_rate, 2),
        "fused_rows": fused_rows,
        "cycles": plain_result.cycles,
        "wall_s": round(plain_wall, 6),
        "fused_wall_s": round(fused_wall, 6),
        "instructions": plain_result.instructions,
        "opcode_profile": opcode_profile,
        "quick": quick,
    }

    # quick (CI smoke) runs get their own file so they never clobber the
    # committed full-run scoreboard
    name = "BENCH_interp_quick.json" if quick else "BENCH_interp.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(best, handle, indent=2)
        handle.write("\n")
    print(f"{best['instr_per_sec']:,} instr/sec unfused, "
          f"{best['fused_instr_per_sec']:,} fused "
          f"({best['fusion_speedup']}x, {fused_rows} superinstruction rows; "
          f"{best['instructions']:,} instructions, "
          f"{best['cycles']:,} cycles) -> {out}")


if __name__ == "__main__":
    main()
