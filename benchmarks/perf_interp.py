"""Sustained interpreter throughput on a tight synthetic loop.

Measures instructions/second of ``Cpu.run``'s fast path on a counting loop
whose opcode mix (load/store, immediate, ALU, compare, branch) resembles
generated firmware. Writes ``BENCH_interp.json`` next to this file so the
perf trajectory of the hot loop is tracked across PRs.

Usage::

    python benchmarks/perf_interp.py           # full run (~4M instructions/rep)
    python benchmarks/perf_interp.py --quick   # CI smoke (~400k instructions)
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.target.assembler import Assembler
from repro.target.cpu import Cpu, StopReason
from repro.target.memory import RAM_BASE, MemoryMap

#: loop iterations per rep; 8 instructions each
FULL_ITERS = 500_000
QUICK_ITERS = 50_000
REPS = 5  # best-of: rides out scheduler noise on short reps


def counting_loop(iterations: int):
    """``for i in range(iterations): m[0] = i`` as stack code."""
    counter = RAM_BASE
    asm = Assembler()
    asm.label("top")
    asm.emit("LOAD", counter)
    asm.emit("PUSH", 1)
    asm.emit("ADD")
    asm.emit("STORE", counter)
    asm.emit("LOAD", counter)
    asm.emit("PUSH", iterations)
    asm.emit("LT")
    asm.emit_jump("JNZ", "top")
    asm.emit("HALT")
    return asm.assemble()


def run_once(iterations: int):
    memory = MemoryMap(16)
    cpu = Cpu(memory)
    cpu.load(counting_loop(iterations))
    cpu.reset_task(0)
    start = time.perf_counter()
    result = cpu.run(max_instructions=10 * iterations)
    wall_s = time.perf_counter() - start
    assert result.reason is StopReason.HALTED, result
    assert memory.peek(RAM_BASE) == iterations
    return result, wall_s


def main() -> None:
    quick = "--quick" in sys.argv
    iterations = QUICK_ITERS if quick else FULL_ITERS
    run_once(QUICK_ITERS)  # warm up caches and the allocator

    best = None
    for _ in range(REPS):
        result, wall_s = run_once(iterations)
        rate = result.instructions / wall_s
        if best is None or rate > best["instr_per_sec"]:
            best = {
                "instr_per_sec": round(rate),
                "cycles": result.cycles,
                "wall_s": round(wall_s, 6),
                "instructions": result.instructions,
                "quick": quick,
            }

    # quick (CI smoke) runs get their own file so they never clobber the
    # committed full-run scoreboard
    name = "BENCH_interp_quick.json" if quick else "BENCH_interp.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(best, handle, indent=2)
        handle.write("\n")
    print(f"{best['instr_per_sec']:,} instr/sec "
          f"({best['instructions']:,} instructions in {best['wall_s']}s, "
          f"{best['cycles']:,} cycles) -> {out}")


if __name__ == "__main__":
    main()
