"""E7 (paper §II claim): the passive JTAG interface eliminates the
instrumentation overhead of the active solution.

"With leading hardware access/communication techniques, the overhead of
using additional codes to send commands to GDM can be eliminated."

Measures target-side cycles per job under: clean code (no debugging), three
active instrumentation levels, and passive JTAG monitoring of clean code.

Expected shape: passive == clean exactly (0 extra cycles); active overhead
grows with instrumentation level; the price of passive is host-side scan
traffic and poll-bounded latency instead.
"""

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comm.channel import ActiveChannel, PassiveChannel, WatchSpec
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import chain_system
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import DebugPort
from repro.util.timeunits import ms

JOBS = 200
PERIOD = ms(5)


def run_active(plan):
    system = chain_system(8, period_us=PERIOD)
    firmware = generate_firmware(system, plan)
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim)
    channel = None
    if plan.any_enabled:
        channel = ActiveChannel(sim, kernel.board_of("node0"), firmware,
                                link=Rs232Link(115200))
        kernel.add_job_hook("node0",
                            lambda actor, t: channel.begin_job(t))
    kernel.run(PERIOD * JOBS)
    board = kernel.board_of("node0")
    frames = channel.frames_sent if channel else 0
    return board.cpu.cycles, frames, firmware.instruction_count()


def run_passive():
    system = chain_system(8, period_us=PERIOD)
    firmware = generate_firmware(system, InstrumentationPlan.none())
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim)
    board = kernel.board_of("node0")
    probe = JtagProbe(TapController(DebugPort(board)),
                      transport=UsbTransport())
    machine = system.actor("walker").network.block("fsm").machine
    channel = PassiveChannel(
        sim, probe, firmware,
        [WatchSpec.state_machine("walker", "fsm", machine),
         WatchSpec.signal("walker", "pos", "pos")],
        poll_period_us=1000,
    )
    channel.start()
    events = []
    channel.subscribe(events.append)
    kernel.run(PERIOD * JOBS)
    return (board.cpu.cycles, len(events), probe.operations,
            channel.scan_us_total, firmware.instruction_count())


def test_e7_instrumentation_overhead(benchmark):
    """Cycles/job per debugging configuration; passive must cost zero."""
    clean_cycles, _, clean_size = run_active(InstrumentationPlan.none())
    configs = [
        ("clean (no debugging)", clean_cycles, 0, clean_size),
    ]
    for name, plan in (
        ("active: state_enter only",
         InstrumentationPlan(state_enter=True, signal_update=False)),
        ("active: states + signals", InstrumentationPlan()),
        ("active: full (trans+tasks)", InstrumentationPlan.full()),
    ):
        cycles, frames, size = run_active(plan)
        configs.append((name, cycles, frames, size))

    passive_cycles, passive_events, probe_ops, scan_us, passive_size = run_passive()

    table = ResultTable(
        f"E7 — target overhead over {JOBS} jobs (8-state chain)",
        ["configuration", "target cycles", "overhead vs clean",
         "host events", "code size (instrs)"],
    )
    for name, cycles, frames, size in configs:
        overhead = (cycles - clean_cycles) / clean_cycles * 100
        table.add_row(name, cycles, f"+{overhead:.1f}%", frames, size)
    table.add_row("passive JTAG (1ms poll)", passive_cycles,
                  f"+{(passive_cycles - clean_cycles) / clean_cycles * 100:.1f}%",
                  passive_events, passive_size)
    table.add_row("  (passive host side)", "-",
                  f"{probe_ops} scans, {scan_us}us scan time", "-", "-")
    table.print()
    save_artifact("e7_overhead.txt", table.render())

    # The paper's claim, exactly: passive adds zero target cycles.
    assert passive_cycles == clean_cycles
    # Active instrumentation has real, monotone cost.
    active_cycles = [c for _, c, _, _ in configs[1:]]
    assert all(c > clean_cycles for c in active_cycles)
    assert active_cycles[0] <= active_cycles[-1]
    # Both observe the system (events flowed).
    assert passive_events > 0 and configs[2][2] > 0

    def measured_job():
        system = chain_system(8, period_us=PERIOD)
        firmware = generate_firmware(system, InstrumentationPlan.full())
        kernel = DtmKernel(system, firmware)
        kernel.run(PERIOD * 10)
        return kernel.board_of("node0").cpu.cycles

    benchmark(measured_job)
