"""E7 (paper §II claim): the passive JTAG interface eliminates the
instrumentation overhead of the active solution.

"With leading hardware access/communication techniques, the overhead of
using additional codes to send commands to GDM can be eliminated."

Measures target-side cycles per job under: clean code (no debugging), three
active instrumentation levels, and passive JTAG monitoring of clean code.

Expected shape: passive == clean exactly (0 extra cycles); active overhead
grows with instrumentation level; the price of passive is host-side scan
traffic and poll-bounded latency instead.
"""

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comm.channel import ActiveChannel, PassiveChannel, WatchSpec
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import JtagLink
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import chain_system
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import DebugPort
from repro.util.timeunits import ms

JOBS = 200
PERIOD = ms(5)


def run_active(plan):
    system = chain_system(8, period_us=PERIOD)
    firmware = generate_firmware(system, plan)
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim)
    channel = None
    if plan.any_enabled:
        channel = ActiveChannel(sim, kernel.board_of("node0"), firmware,
                                link=Rs232Link(115200))
        kernel.add_job_hook("node0",
                            lambda actor, t: channel.begin_job(t))
    kernel.run(PERIOD * JOBS)
    board = kernel.board_of("node0")
    frames = channel.frames_sent if channel else 0
    return board.cpu.cycles, frames, firmware.instruction_count()


def run_passive():
    system = chain_system(8, period_us=PERIOD)
    firmware = generate_firmware(system, InstrumentationPlan.none())
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim)
    board = kernel.board_of("node0")
    probe = JtagProbe(TapController(DebugPort(board)),
                      transport=UsbTransport())
    machine = system.actor("walker").network.block("fsm").machine
    channel = PassiveChannel(
        sim, probe, firmware,
        [WatchSpec.state_machine("walker", "fsm", machine),
         WatchSpec.signal("walker", "pos", "pos")],
        poll_period_us=1000,
    )
    channel.start()
    events = []
    channel.subscribe(events.append)
    kernel.run(PERIOD * JOBS)
    return (board.cpu.cycles, len(events), probe.operations,
            channel.scan_us_total, firmware.instruction_count())


def test_e7_instrumentation_overhead(benchmark):
    """Cycles/job per debugging configuration; passive must cost zero."""
    clean_cycles, _, clean_size = run_active(InstrumentationPlan.none())
    configs = [
        ("clean (no debugging)", clean_cycles, 0, clean_size),
    ]
    for name, plan in (
        ("active: state_enter only",
         InstrumentationPlan(state_enter=True, signal_update=False)),
        ("active: states + signals", InstrumentationPlan()),
        ("active: full (trans+tasks)", InstrumentationPlan.full()),
    ):
        cycles, frames, size = run_active(plan)
        configs.append((name, cycles, frames, size))

    passive_cycles, passive_events, probe_ops, scan_us, passive_size = run_passive()

    table = ResultTable(
        f"E7 — target overhead over {JOBS} jobs (8-state chain)",
        ["configuration", "target cycles", "overhead vs clean",
         "host events", "code size (instrs)"],
    )
    for name, cycles, frames, size in configs:
        overhead = (cycles - clean_cycles) / clean_cycles * 100
        table.add_row(name, cycles, f"+{overhead:.1f}%", frames, size)
    table.add_row("passive JTAG (1ms poll)", passive_cycles,
                  f"+{(passive_cycles - clean_cycles) / clean_cycles * 100:.1f}%",
                  passive_events, passive_size)
    table.add_row("  (passive host side)", "-",
                  f"{probe_ops} scans, {scan_us}us scan time", "-", "-")
    table.print()
    save_artifact("e7_overhead.txt", table.render())

    # The paper's claim, exactly: passive adds zero target cycles.
    assert passive_cycles == clean_cycles
    # Active instrumentation has real, monotone cost.
    active_cycles = [c for _, c, _, _ in configs[1:]]
    assert all(c > clean_cycles for c in active_cycles)
    assert active_cycles[0] <= active_cycles[-1]
    # Both observe the system (events flowed).
    assert passive_events > 0 and configs[2][2] > 0

    def measured_job():
        system = chain_system(8, period_us=PERIOD)
        firmware = generate_firmware(system, InstrumentationPlan.full())
        kernel = DtmKernel(system, firmware)
        kernel.run(PERIOD * 10)
        return kernel.board_of("node0").cpu.cycles

    benchmark(measured_job)


def test_e7_watch_count_scaling(benchmark):
    """Host scan cost vs. watch count: batched transport stays sublinear.

    The companion figure to the overhead table, against two reference
    models: the *prior poll loop* this transport replaced (one full
    MEMADDR+MEMREAD round trip per watched word, USB already amortized
    to one transaction per poll) and the *unbatched per-word probe*
    (every word its own USB round trip — what real probes without block
    transfers pay, and what plain ``read_word_timed`` clients still
    pay). The batched link compiles the watch set into contiguous
    BLOCKREAD runs inside one USB transaction, so the curve flattens —
    and the target still pays zero.
    """
    from repro.target.board import Board
    from repro.target.memory import RAM_BASE

    def make_link():
        board = Board()
        probe = JtagProbe(TapController(DebugPort(board)),
                          transport=UsbTransport())
        return board, JtagLink(probe)

    counts = (1, 2, 4, 8, 16, 32, 64)
    rows = []
    for count in counts:
        # One long contiguous run plus a stray pair: codegen allocates
        # data words sequentially, the strays keep the planner honest.
        addrs = [RAM_BASE + i for i in range(count)]
        if count > 2:
            addrs = addrs[:-2] + [RAM_BASE + 1000, RAM_BASE + 1001]
        board, link = make_link()
        _, batched_us = link.read_scatter(addrs)
        txns = link.probe.transport.transactions
        target_cycles = board.cpu.cycles
        _, prior = make_link()
        prior_us = sum(
            prior.probe.read_word_timed(a, charge_transport=False)[1]
            for a in addrs
        ) + prior.probe.transport.transaction_cost_us(2 * count)
        _, per_word = make_link()
        per_word_us = per_word.read_word(addrs[0])[1] * count
        rows.append((count, batched_us, prior_us, per_word_us, txns,
                     target_cycles))

    table = ResultTable(
        "E7 figure — modeled scan cost per poll vs. watch count",
        ["watches", "batched us/poll", "prior poll us", "per-word probe us",
         "USB txns/poll", "target cycles"],
    )
    scale = max(batched for _, batched, _, _, _, _ in rows)
    unit = scale // 30 or 1
    bars = [f"watches  batched (#) vs prior poll loop (%), one char = {unit}us"]
    for count, batched_us, prior_us, per_word_us, txns, cycles in rows:
        table.add_row(count, batched_us, prior_us, per_word_us, txns, cycles)
        bars.append(f"{count:>7}  " + "#" * max(1, batched_us // unit))
        bars.append("         " + "%" * min(120, max(1, prior_us // unit)))
    table.print()
    save_artifact("e7_watch_scaling.txt",
                  table.render() + "\n\n" + "\n".join(bars))

    by_count = {row[0]: row[1:] for row in rows}
    # Exactly one USB transaction per poll, at every watch count.
    assert all(txns == 1 for _, _, _, _, txns, _ in rows)
    # Batched cost is sublinear: 64x the watches, far less than 64x the
    # cost; the per-word probe model is linear by construction.
    assert by_count[64][0] < 16 * by_count[1][0]
    assert by_count[64][2] == 64 * by_count[1][2]
    # Batching must beat both references at scale: ~2x over the prior
    # poll loop's per-word scans, ~an order over per-word transactions.
    assert 2 * by_count[64][0] < by_count[64][1]
    assert 8 * by_count[64][0] < by_count[64][2]
    # The E7 invariant holds: zero target cycles for every host scan.
    assert all(cycles == 0 for _, _, _, _, _, cycles in rows)

    def measured_poll():
        _, link = make_link()
        addrs = [RAM_BASE + i for i in range(62)] + [RAM_BASE + 1000,
                                                     RAM_BASE + 1001]
        return link.read_scatter(addrs)[1]

    benchmark(measured_poll)
