"""E10 (paper §III claim): execution trace, replay, timing diagram.

"GDM animation will trace model-level behavior and always make a record of
the execution trace. The user can then monitor the application's behavior
via a replay function associated with a timing diagram."

Measures trace recording overhead, replay throughput and fidelity (replay
must reproduce the recorded reaction sequence exactly), trace serialization
round-trip, and timing-diagram generation.
"""

import time

from repro.engine.replay import ReplayPlayer
from repro.engine.session import DebugSession
from repro.engine.timing_diagram import TimingDiagram
from repro.engine.trace import ExecutionTrace
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import chain_system
from repro.util.timeunits import ms


def record_session(n_states=12, jobs=400):
    session = DebugSession(chain_system(n_states, period_us=ms(2)),
                           channel_kind="active")
    session.setup().run(ms(2) * jobs)
    return session


def test_e10_trace_replay_timing_diagram(benchmark):
    """Trace/replay metrics + exact-fidelity assertions."""
    session = record_session()
    trace = session.trace
    gdm = session.gdm

    live_highlights = sorted(e.source_path for e in gdm.elements.values()
                             if e.highlighted)

    player = ReplayPlayer(trace, gdm)
    player.start()
    t0 = time.perf_counter()
    replayed = player.run_to_end()
    replay_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    data = trace.to_dicts()
    restored = ExecutionTrace.from_dicts(data)
    serialize_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    diagram = TimingDiagram(trace)
    ascii_diagram = diagram.render_ascii(64)
    diagram_seconds = time.perf_counter() - t0

    table = ResultTable(
        "E10 — trace, replay, timing diagram (12-state chain, 400 jobs)",
        ["metric", "value"],
    )
    table.add_row("trace events", len(trace))
    table.add_row("trace span (simulated)", f"{trace.duration_us() / 1000:.0f}ms")
    table.add_row("mean command latency", f"{trace.mean_latency_us():.0f}us")
    table.add_row("replayed events", replayed)
    table.add_row("replay throughput",
                  f"{replayed / max(replay_seconds, 1e-9):.0f} events/s")
    table.add_row("serialize+restore", f"{serialize_seconds * 1000:.1f}ms")
    table.add_row("timing diagram lanes", len(diagram.lanes))
    table.add_row("timing diagram render", f"{diagram_seconds * 1000:.1f}ms")
    table.print()
    save_artifact("e10_replay.txt", table.render())
    save_artifact("e10_timing_diagram.txt", ascii_diagram)
    save_artifact("e10_timing_diagram.svg", diagram.render_svg())

    # Fidelity: replay reproduces the live end state exactly...
    assert player.highlighted_paths() == live_highlights
    # ...and a second replay of the restored trace is byte-identical.
    player2 = ReplayPlayer(restored, gdm)
    player2.start()
    player2.run_to_end()
    assert player2.highlighted_paths() == live_highlights
    assert restored.to_dicts() == data
    assert replayed == len(trace)
    assert "state:walker.fsm" in diagram.lanes

    def replay_all():
        p = ReplayPlayer(trace, gdm)
        p.start()
        return p.run_to_end()

    benchmark(replay_all)
