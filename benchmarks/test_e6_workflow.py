"""E6 (paper Fig 6): the prototype's five-step execution flow.

Runs the complete workflow — inputs, selection, abstraction, command setup,
GDM creation + connection — then the runtime interaction, and saves the
numbered log as the Fig 6 artifact. Also exercises the user-control features
the paper lists: model-level breakpoint, stepping, resume.
"""

from repro.comdes.examples import cruise_control_system
from repro.engine.breakpoints import StateEntryBreakpoint
from repro.engine.engine import EngineState
from repro.engine.session import DebugSession
from repro.experiments.figures import fig6_execution_flow
from repro.experiments.harness import ResultTable, save_artifact
from repro.util.timeunits import ms


def test_e6_full_workflow(benchmark):
    """The five steps + breakpoint/step/resume on the heterogeneous model."""
    session = DebugSession(cruise_control_system(), channel_kind="active")
    session.setup()
    assert [line[:3] for line in session.workflow_log] == [
        "[1]", "[2]", "[3]", "[4]", "[5]",
    ]

    # Break when the cruise controller engages.
    session.engine.breakpoints.add(
        StateEntryBreakpoint("state:controller.mode_logic.CRUISE"))
    session.run(ms(20) * 100)
    assert session.engine.state is EngineState.PAUSED
    paused_at = session.sim.now

    # Step one model event, then resume free-running.
    session.stepper.step(1)
    session.run_for(ms(20) * 50)
    assert session.engine.state is EngineState.PAUSED
    session.engine.breakpoints.all()[0].enabled = False
    session.stepper.resume()
    session.run_for(ms(20) * 100)
    assert session.engine.state is EngineState.WAITING

    table = ResultTable("E6 — prototype execution flow (cruise control)",
                        ["step", "record"])
    for line in session.workflow_log:
        number, _, message = line.partition("] ")
        table.add_row(number.strip("["), message[:70])
    table.add_row("run", f"breakpoint hit at t={paused_at}us; "
                         f"{len(session.trace)} commands traced")
    table.print()
    save_artifact("e6_workflow.txt", table.render())
    save_artifact("fig6_execution_flow.txt", fig6_execution_flow())

    def full_workflow():
        s = DebugSession(cruise_control_system(), channel_kind="active")
        s.setup().run(ms(20) * 20)
        return s

    result = benchmark(full_workflow)
    assert len(result.trace) > 0
