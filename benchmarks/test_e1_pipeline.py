"""E1 (paper Fig 1): the end-to-end MDD pipeline with the model debugger.

Regenerates the Fig 1 artifact and measures each pipeline stage — modeling,
reflection, code generation, abstraction, debug session — for the
cruise-control workload.
"""

import time

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import cruise_control_system
from repro.comdes.reflect import system_to_model
from repro.engine.session import DebugSession
from repro.experiments.figures import fig1_mdd_role
from repro.experiments.harness import ResultTable, save_artifact
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.util.timeunits import ms


def _stage_times():
    times = {}
    t0 = time.perf_counter()
    system = cruise_control_system()
    times["model construction"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    model = system_to_model(system)
    times["reflection (EMF bridge)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    firmware = generate_firmware(system, InstrumentationPlan())
    times["model transformation (codegen)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    times["abstraction (GDM generation)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    session = DebugSession(cruise_control_system(), channel_kind="active")
    session.setup().run(ms(20) * 50)
    times["debug session (1s simulated)"] = time.perf_counter() - t0
    return times, model, firmware, gdm, session


def test_e1_pipeline_stages(benchmark):
    """Stage timing table + Fig 1 artifact; benchmark = full cold pipeline."""
    times, model, firmware, gdm, session = _stage_times()

    table = ResultTable("E1 — MDD pipeline stages (cruise control)",
                        ["stage", "wall time (ms)", "output"])
    outputs = {
        "model construction": "3 actors, 5 signals",
        "reflection (EMF bridge)": f"{len(model)} model objects",
        "model transformation (codegen)":
            f"{firmware.instruction_count()} instructions",
        "abstraction (GDM generation)":
            f"{len(gdm.elements)} elements, {len(gdm.links)} links",
        "debug session (1s simulated)":
            f"{len(session.trace)} commands traced",
    }
    for stage, seconds in times.items():
        table.add_row(stage, f"{seconds * 1000:.2f}", outputs[stage])
    table.print()
    save_artifact("e1_pipeline.txt", table.render())
    save_artifact("fig1_mdd_role.txt", fig1_mdd_role())

    # The headline number: a cold model->debuggable-session pipeline.
    def cold_pipeline():
        s = DebugSession(cruise_control_system(), channel_kind="active")
        s.setup()
        return s

    session = benchmark(cold_pipeline)
    assert session.engine.state.name == "WAITING"
    assert len(session.gdm.elements) > 10
