"""Batch-tier throughput: N identical-firmware boards in SoA lockstep.

The scoreboard for :class:`repro.target.batch.BatchCpu` — the raw-speed
multiplier for identical-firmware campaigns (seed sweeps, differential
fault oracles) where every board runs the same program over per-lane
data. Like ``perf_interp.py``, the floored workload is a synthetic
*campaign kernel* whose opcode mix (load/store, immediate, ALU with
MUL/MOD, compare, branch, one EMIT per activation) resembles generated
task bodies but is long enough per activation (~500 instructions) that
the number measures lockstep execution, not activation setup. Measured:

* **batch_speedup_16 / batch_speedup_64** — wall-clock speedup of
  ``BatchCpu.run_jobs`` over the serial campaign inner loop (fused
  ``Cpu.run`` per board, the production serial path) at 16 and 64
  lanes. ``batch_speedup_64`` is floor-gated in CI at 3.0.
* **cohort_speedup_64** — the same comparison on the *real*
  traffic-light firmware through :class:`repro.fleet.batch.BoardCohort`
  (per-lane script offsets, so lanes split and re-merge every
  activation). Generated activations are only ~30-40 instructions and
  EMIT-heavy, so this lands far below the kernel number — recorded
  un-floored so the gap stays visible instead of hidden.
* **batch_parity_identical** — 1 iff (a) every kernel lane's full
  architectural state (pc, stack, counters, RAM, emit log) is
  bit-identical between batch and serial, (b) the same holds for every
  traffic-light cohort board, and (c) a quick-corpus campaign run
  through :class:`repro.fleet.batch.BatchRunner` produces byte-identical
  outcomes to :class:`repro.fleet.SerialRunner` through the canonical
  merge. This is the hard invariant (CI floors it at 1): lockstep must
  never change results.

Writes ``BENCH_batch.json`` next to this file so the batch tier's perf
trajectory is tracked across PRs.

Usage::

    python benchmarks/perf_batch.py           # full run, best-of reps
    python benchmarks/perf_batch.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.faults import run_campaign
from repro.fleet import BatchRunner, SerialRunner
from repro.fleet.batch import BoardCohort
from repro.target.assembler import Assembler
from repro.target.batch import BatchCpu
from repro.target.cpu import Cpu
from repro.target.memory import RAM_BASE, MemoryMap
from repro.util.seeds import derive_seed

FULL_JOBS = 60
QUICK_JOBS = 6
FULL_REPS = 3
QUICK_REPS = 1
KERNEL_ITERS = 50  # LCG rounds per activation, ~10 instructions each

SEED_ADDR = RAM_BASE
ACC_ADDR = RAM_BASE + 1
I_ADDR = RAM_BASE + 2
KERNEL_RAM = 4


def campaign_kernel():
    """One campaign activation: seed-driven LCG mix, checksum, EMIT.

    The shape of a differential-oracle job: per-lane seed data flows
    through MUL/ADD/MOD (the expensive ALU ops), a loop-counter branch
    closes each round (uniform across lanes — identical firmware in
    lockstep), and the activation reports one checksum over the command
    interface before halting.
    """
    asm = Assembler()
    asm.emit("PUSH", KERNEL_ITERS)
    asm.emit("STORE", I_ADDR)
    asm.label("round")
    # acc = (acc * 1103515245 + seed) % 0x7fffffff
    asm.emit("LOAD", ACC_ADDR)
    asm.emit("PUSH", 1103515245)
    asm.emit("MUL")
    asm.emit("LOAD", SEED_ADDR)
    asm.emit("ADD")
    asm.emit("PUSH", 0x7FFFFFFF)
    asm.emit("MOD")
    asm.emit("STORE", ACC_ADDR)
    # while (--i) != 0 keep mixing
    asm.emit("LOAD", I_ADDR)
    asm.emit("PUSH", 1)
    asm.emit("SUB")
    asm.emit("STORE", I_ADDR)
    asm.emit("LOAD", I_ADDR)
    asm.emit_jump("JNZ", "round")
    # report the checksum: EMIT kind 2, channel 7, value acc
    asm.emit("PUSH", 7)
    asm.emit("LOAD", ACC_ADDR)
    asm.emit("EMIT", 2)
    asm.emit("HALT")
    return asm.assemble()


def kernel_lanes(count: int):
    code = campaign_kernel()
    cpus = []
    for lane in range(count):
        cpu = Cpu(MemoryMap(KERNEL_RAM))
        cpu.load(code)
        cpu.memory.poke(SEED_ADDR, derive_seed(2026, "perf_batch", lane)
                        % 0x7FFFFFFF)
        cpus.append(cpu)
    return cpus


def cpu_snap(cpu: Cpu) -> tuple:
    return (cpu.pc, tuple(cpu.stack), cpu.cycles, cpu.instructions,
            cpu.halted, tuple(cpu.memory.cells), cpu.memory.reads,
            cpu.memory.writes, tuple(cpu.emit_log))


def serial_kernel(count: int, jobs: int) -> tuple:
    cpus = kernel_lanes(count)
    start = time.perf_counter()
    for _ in range(jobs):
        for cpu in cpus:
            cpu.reset_task(0)
            cpu.run(max_instructions=1_000_000)
    return [cpu_snap(c) for c in cpus], time.perf_counter() - start


def batch_kernel(count: int, jobs: int) -> tuple:
    cpus = kernel_lanes(count)
    batch = BatchCpu(cpus)
    start = time.perf_counter()
    batch.run_jobs(0, jobs, max_instructions=1_000_000)
    return [cpu_snap(c) for c in cpus], time.perf_counter() - start


def kernel_speedup(count: int, jobs: int, reps: int) -> tuple:
    """(speedup, serial_s, batch_s, parity) at *count* lanes, best-of."""
    serial_snaps, _ = serial_kernel(count, jobs)   # warm-up + reference
    batch_snaps, _ = batch_kernel(count, jobs)
    parity = int(serial_snaps == batch_snaps)
    serial_s = min(serial_kernel(count, jobs)[1] for _ in range(reps))
    batch_s = min(batch_kernel(count, jobs)[1] for _ in range(reps))
    return round(serial_s / batch_s, 2), serial_s, batch_s, parity


def cohort_speedup(jobs: int, reps: int) -> tuple:
    """Real-firmware comparison: 64 traffic-light boards, both tasks."""
    from repro.codegen.pipeline import generate_firmware
    from repro.comdes.examples import traffic_light_system
    from repro.target.board import Board

    firmware = generate_firmware(traffic_light_system())
    lanes = 64
    offsets = [lane % 7 for lane in range(lanes)]

    def serial_once():
        boards = []
        addr = firmware.symbols.addr_of("pedestrian.script.$idx")
        for lane in range(lanes):
            board = Board(ram_words=max(1, len(firmware.symbols)))
            board.load_firmware(firmware)
            board.memory.poke(addr, offsets[lane])
            boards.append(board)
        start = time.perf_counter()
        for task in firmware.entries:
            entry = firmware.entry_of(task)
            for _ in range(jobs):
                for board in boards:
                    board.cpu.reset_task(entry)
                    board.cpu.run(max_instructions=1_000_000)
        return boards, time.perf_counter() - start

    def batch_once():
        cohort = BoardCohort(firmware, lanes)
        cohort.poke_symbol("pedestrian.script.$idx", offsets)
        start = time.perf_counter()
        for task in firmware.entries:
            cohort.run_jobs(task, jobs)
        return cohort, time.perf_counter() - start

    boards, _ = serial_once()
    cohort, _ = batch_once()
    parity = int([cpu_snap(b.cpu) for b in boards]
                 == [cpu_snap(b.cpu) for b in cohort.boards])
    serial_s = min(serial_once()[1] for _ in range(reps))
    batch_s = min(batch_once()[1] for _ in range(reps))
    return round(serial_s / batch_s, 2), parity, dict(cohort.batch.stats)


def campaign_parity() -> int:
    """BatchRunner == SerialRunner through the full canonical merge."""
    from repro.comdes.examples import traffic_light_system  # noqa: F401
    from repro.experiments.requirements import (
        traffic_light_code_watches, traffic_light_monitor_suite)
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from perf_fleet import outcome_fingerprint

    kw = dict(design_kinds=("wrong_target", "remove_transition"),
              impl_kinds=("inverted_branch", "store_drop"),
              seeds=(1, 2), duration_us=1_000_000)
    results = {}
    for name, runner in (("serial", SerialRunner()),
                         ("batch", BatchRunner())):
        results[name] = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=runner, **kw)
    return int(outcome_fingerprint(results["serial"])
               == outcome_fingerprint(results["batch"]))


def main() -> None:
    quick = "--quick" in sys.argv
    jobs = QUICK_JOBS if quick else FULL_JOBS
    reps = QUICK_REPS if quick else FULL_REPS

    s16, serial16_s, batch16_s, parity16 = kernel_speedup(16, jobs, reps)
    s64, serial64_s, batch64_s, parity64 = kernel_speedup(64, jobs, reps)
    cohort64, cohort_parity, cohort_stats = cohort_speedup(
        max(1, jobs // 2), reps)
    runner_parity = campaign_parity()
    parity = int(parity16 and parity64 and cohort_parity and runner_parity)

    instr_per_job = KERNEL_ITERS * 10 + 6
    results = {
        "kernel_jobs": jobs,
        "kernel_instr_per_job": instr_per_job,
        "serial_16_s": round(serial16_s, 3),
        "batch_16_s": round(batch16_s, 3),
        "batch_speedup_16": s16,
        "serial_64_s": round(serial64_s, 3),
        "batch_64_s": round(batch64_s, 3),
        "batch_speedup_64": s64,
        "serial_boards_per_sec_64": round(64 * jobs / serial64_s, 1),
        "batch_boards_per_sec_64": round(64 * jobs / batch64_s, 1),
        "cohort_speedup_64": cohort64,
        "cohort_stats": cohort_stats,
        "batch_parity_identical": parity,
        "quick": quick,
    }

    name = "BENCH_batch_quick.json" if quick else "BENCH_batch.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"kernel: 16 lanes {s16}x, 64 lanes {s64}x "
          f"({results['serial_boards_per_sec_64']} -> "
          f"{results['batch_boards_per_sec_64']} boards*jobs/s); "
          f"traffic-light cohort {cohort64}x; "
          f"parity={'OK' if parity else 'BROKEN'}")
    print(f"-> {out}")
    if not parity:
        sys.exit(1)


if __name__ == "__main__":
    main()
