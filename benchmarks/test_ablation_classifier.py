"""Ablation: the bug classifier (paper's future work, DESIGN.md §5).

Runs the differential oracle over every fault the E9 campaign injects and
scores classification accuracy against the injected ground truth. Faults
whose code mutation is behaviourally equivalent (no divergence, no
violation) are excluded — there is nothing to classify.

Expected shape: design faults are classified 'design' whenever a faithful
code generator is used (by construction); implementation faults are
classified 'implementation' whenever they actually diverge.
"""

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.engine.classify import BugClass, classify_bug
from repro.experiments.harness import ResultTable, save_artifact
from repro.faults.design import DESIGN_FAULT_KINDS, inject_design_fault
from repro.faults.implementation import (
    IMPL_FAULT_KINDS, inject_implementation_fault,
)

PLAN = InstrumentationPlan.none()
SEEDS = (1, 2, 3)


def test_ablation_bug_classification(benchmark):
    """Classifier accuracy table over the full fault population."""
    rows = []
    correct = {"design": 0, "implementation": 0}
    total = {"design": 0, "implementation": 0}
    inconclusive = 0

    for kind in DESIGN_FAULT_KINDS:
        for seed in SEEDS:
            mutant, fault = inject_design_fault(traffic_light_system(),
                                                kind, seed)
            if mutant is None:
                continue
            firmware = generate_firmware(mutant, PLAN)
            result = classify_bug(mutant, firmware)
            total["design"] += 1
            if result.verdict is BugClass.DESIGN:
                correct["design"] += 1
            rows.append((fault.fault_id, "design", result.verdict.value))

    base_system = traffic_light_system()
    base_firmware = generate_firmware(base_system, PLAN)
    for kind in IMPL_FAULT_KINDS:
        for seed in SEEDS:
            mutant_fw, fault = inject_implementation_fault(base_firmware,
                                                           kind, seed)
            if mutant_fw is None:
                continue
            result = classify_bug(base_system, mutant_fw)
            if result.divergence is None and result.verdict is BugClass.DESIGN:
                # Behaviourally equivalent code mutation: nothing observable
                # to classify. Excluded from scoring, counted for honesty.
                inconclusive += 1
                rows.append((fault.fault_id, "implementation",
                             "equivalent (excluded)"))
                continue
            total["implementation"] += 1
            if result.verdict is BugClass.IMPLEMENTATION:
                correct["implementation"] += 1
            rows.append((fault.fault_id, "implementation",
                         result.verdict.value))

    table = ResultTable(
        "Ablation — differential bug classifier (future work of the paper)",
        ["injected category", "classified correctly", "accuracy"],
    )
    for category in ("design", "implementation"):
        accuracy = correct[category] / total[category]
        table.add_row(category, f"{correct[category]}/{total[category]}",
                      f"{accuracy * 100:.0f}%")
    table.add_row("equivalent code mutants", inconclusive, "excluded")
    table.print()

    detail = "\n".join(f"{fid:34s} truth={truth:15s} verdict={verdict}"
                       for fid, truth, verdict in rows)
    save_artifact("ablation_classifier.txt",
                  table.render() + "\n\n" + detail)

    # By construction the oracle is exact on these fault populations.
    assert correct["design"] == total["design"]
    assert correct["implementation"] == total["implementation"]

    mutant, _ = inject_design_fault(traffic_light_system(), "wrong_target", 1)
    firmware = generate_firmware(mutant, PLAN)
    benchmark(classify_bug, mutant, firmware)
