"""Passive-poll throughput and modeled scan cost vs. watch count.

The scoreboard for the transaction-batched debug transport: at 1, 8 and
64 watches it measures

* **host polls/sec** — wall-clock rate of executing the compiled poll
  plan (one scatter read over the bit-banged TAP) on this machine;
* **modeled scan µs/poll** — what the link's cost model charges per poll
  (TCK-rate scan time + one USB transaction), next to two reference
  models: the *prior poll loop* this PR replaced (a full MEMADDR+MEMREAD
  round trip per watched word, USB already amortized to one transaction
  per poll) and the *unbatched per-word probe* (what plain
  ``read_word_timed`` clients pay: a USB transaction for every word);
* **USB transactions/poll** — must be exactly 1 at every watch count.

Writes ``BENCH_poll.json`` next to this file so the transport's perf
trajectory is tracked across PRs.

Usage::

    python benchmarks/perf_poll.py           # full run
    python benchmarks/perf_poll.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import JtagLink
from repro.comm.usb import UsbTransport
from repro.target.board import Board, DebugPort
from repro.target.memory import RAM_BASE

WATCH_COUNTS = (1, 8, 64)
TCK_HZ = 4_000_000
FULL_REPS = 40
QUICK_REPS = 5


def watch_addrs(count: int):
    """A realistic watch set: one long contiguous run plus a stray pair.

    Codegen allocates data words sequentially, so most watches are
    neighbours; the stray run keeps the scatter planner honest.
    """
    if count <= 2:
        return [RAM_BASE + i for i in range(count)]
    main = [RAM_BASE + i for i in range(count - 2)]
    return main + [RAM_BASE + 1000, RAM_BASE + 1001]


def make_link():
    board = Board()
    probe = JtagProbe(TapController(DebugPort(board)), tck_hz=TCK_HZ,
                      transport=UsbTransport())
    return JtagLink(probe)


def measure(count: int, reps: int):
    addrs = watch_addrs(count)
    link = make_link()

    # Deterministic modeled costs (independent of wall clock).
    _, scan_us_batched = link.read_scatter(addrs)
    txn_per_poll = link.probe.transport.transactions  # that was one poll
    reference = make_link()
    # Prior poll loop: per-word MEMADDR+MEMREAD scans, one amortized USB
    # transaction of 2 words per watch — the exact pre-BLOCKREAD model.
    scan_us_prior_poll = sum(
        reference.probe.read_word_timed(addr, charge_transport=False)[1]
        for addr in addrs
    ) + reference.probe.transport.transaction_cost_us(2 * count)
    # Unbatched probe: every word its own USB round trip (read_word_timed
    # default), what a naive host-side variable view pays.
    per_word_us = make_link().read_word(addrs[0])[1]
    scan_us_per_word_probe = per_word_us * count

    # Wall-clock poll rate: best-of over reps rides out scheduler noise.
    best_rate = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        link.read_scatter(addrs)
        elapsed = time.perf_counter() - start
        best_rate = max(best_rate, 1.0 / elapsed)

    return {
        "polls_per_sec": round(best_rate, 1),
        "scan_us_batched": scan_us_batched,
        "scan_us_prior_poll": scan_us_prior_poll,
        "scan_us_per_word_probe": scan_us_per_word_probe,
        "usb_transactions_per_poll": txn_per_poll,
    }


def main() -> None:
    quick = "--quick" in sys.argv
    reps = QUICK_REPS if quick else FULL_REPS
    measure(8, 1)  # warm up caches and the allocator

    results = {
        "tck_hz": TCK_HZ,
        "usb_latency_us": UsbTransport().latency_us,
        "watches": {str(n): measure(n, reps) for n in WATCH_COUNTS},
        "quick": quick,
    }
    for n, row in results["watches"].items():
        assert row["usb_transactions_per_poll"] == 1, (n, row)

    name = "BENCH_poll_quick.json" if quick else "BENCH_poll.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    for n in WATCH_COUNTS:
        row = results["watches"][str(n)]
        print(f"{n:3d} watches: {row['polls_per_sec']:>8} polls/sec, "
              f"{row['scan_us_batched']:>5}us/poll batched "
              f"(prior poll loop: {row['scan_us_prior_poll']}us, "
              f"per-word probe: {row['scan_us_per_word_probe']}us)")
    print(f"-> {out}")


if __name__ == "__main__":
    main()
