"""E4 (paper Fig 4): the abstraction guide and automatic GDM generation.

Walks the pairing workflow programmatically and measures abstraction time
against model size — "once user specified mapping is finished, a GDM can be
obtained automatically".

Expected shape: abstraction cost grows roughly linearly in model size; the
guide dialog regenerates at every size.
"""

import time

from repro.experiments.figures import fig4_abstraction_guide
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import scaled_model
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.guide import AbstractionGuide
from repro.gdm.mapping import default_comdes_table

SIZES = (10, 50, 200, 800)


def test_e4_abstraction_scaling(benchmark):
    """Abstraction time vs model size; guide workflow exercised end-to-end."""
    table = ResultTable(
        "E4 — abstraction (model -> GDM) vs model size",
        ["states in model", "model objects", "GDM elements", "GDM links",
         "abstraction (ms)"],
    )
    elapsed_by_size = {}
    for size in SIZES:
        model = scaled_model(size)
        engine = AbstractionEngine(default_comdes_table(model.metamodel))
        t0 = time.perf_counter()
        gdm = engine.build(model)
        elapsed = (time.perf_counter() - t0) * 1000
        elapsed_by_size[size] = elapsed
        table.add_row(size, len(model), len(gdm.elements), len(gdm.links),
                      f"{elapsed:.2f}")
    table.print()
    save_artifact("e4_abstraction.txt", table.render())
    save_artifact("fig4_abstraction_guide.txt", fig4_abstraction_guide())

    # The interactive workflow itself: pair, inspect, delete, re-pair, finish.
    model = scaled_model(20)
    guide = AbstractionGuide(model)
    guide.pair("State", "Circle", group_by_container=True)
    guide.pair("Signal", "Triangle")
    guide.delete_pairing("Signal")
    guide.pair("Signal", "Rectangle")
    guide.pair("Transition", "Arrow")
    assert ("Signal", "Rectangle") in guide.pairings()
    gdm = guide.finish()
    assert len(gdm.elements) == 20 + 1  # states + the pos signal

    # GDM element count scales with the model (sanity on the sweep).
    model_big = scaled_model(SIZES[-1])
    gdm_big = AbstractionEngine(
        default_comdes_table(model_big.metamodel)).build(model_big)
    assert len(gdm_big.elements) > SIZES[-1]

    benchmark(
        AbstractionEngine(default_comdes_table(model.metamodel)).build, model
    )
