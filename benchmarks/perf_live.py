"""Overhead and throughput scoreboard for the repro.obs live plane.

Three claims gated here (see ``repro/obs/__init__.py`` live-plane
invariants):

* **heartbeats are near-free** — the exemplar serial campaign with a
  ``SerialRunner(live=...)`` heartbeat stream vs the same campaign
  with the live plane off must stay within a 1.10x wall-clock ratio
  (``overhead.live_disabled_ratio``, ceiling-gated). Arms are
  interleaved (off, on, off, on, ...) so clock drift cancels;
* **the aggregator keeps up** — parent-side ingest of synthetic
  window-delta messages (the fleet's hot path while workers stream)
  is recorded as ``aggregator.deltas_per_sec``, floor-gated well below
  measured so the gate catches an accidental O(history) merge, not
  host noise;
* **the transcript is deterministic** — the same master seed through
  ``SerialRunner(live=...)`` and ``FleetRunner(workers=2, live=...)``
  must yield byte-identical alert transcripts and window histories
  (``determinism.transcript_identical``, floor-gated), the live-plane
  analogue of the fleet parity gate.

Writes ``BENCH_live.json`` (or ``BENCH_live_quick.json`` under
``--quick``) next to this file.

Usage::

    python benchmarks/perf_live.py           # full run
    python benchmarks/perf_live.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.comdes.examples import traffic_light_system
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import FleetRunner, SerialRunner
from repro.obs import HeartbeatConfig, LiveAggregator, disable
from repro.obs.metrics import MetricsSnapshot
from repro.util.timeunits import sec

PERIOD_US = 250_000
FULL_REPS = 5
QUICK_REPS = 3
FULL_DELTAS = 200_000
QUICK_DELTAS = 20_000
SERIES_PER_DELTA = 6
JOBS = 16

CAMPAIGN_KW = dict(design_kinds=("wrong_target",),
                   impl_kinds=("inverted_branch",),
                   comm_kinds=("frame_loss", "frame_corrupt"),
                   seeds=(1,))


def synthetic_messages(count: int):
    """Deterministic worker-stream shape: JOBS lanes, rolling windows."""
    messages = []
    for job in range(JOBS):
        messages.append(("start", f"w{job % 4}", job, f"job/{job}"))
    per_job = count // JOBS
    for job in range(JOBS):
        for window in range(per_job):
            delta = MetricsSnapshot()
            for series in range(SERIES_PER_DELTA):
                delta.counters[f"bench.series_{series}"] = {
                    (("lane", str(job % 3)),): window % 7 + 1}
            messages.append(("window", f"w{job % 4}", job, f"job/{job}",
                             window, window * PERIOD_US + 1, delta))
    for job in range(JOBS):
        messages.append(("finish", f"w{job % 4}", job, f"job/{job}",
                         per_job, per_job * PERIOD_US, "ok", "", None))
    return messages


def measure_aggregator(deltas: int):
    """Parent-side ingest rate over the synthetic fleet stream."""
    messages = synthetic_messages(deltas)
    windows = sum(1 for m in messages if m[0] == "window")
    best = float("inf")
    for _ in range(3):
        agg = LiveAggregator(HeartbeatConfig(period_us=PERIOD_US))
        start = time.perf_counter()
        for msg in messages:
            agg.feed(msg)
        best = min(best, time.perf_counter() - start)
        agg.close()
    return {
        "messages": len(messages),
        "window_deltas": windows,
        "series_per_delta": SERIES_PER_DELTA,
        "deltas_per_sec": int(windows / best) if best else 0,
    }


def run_exemplar(duration_us: int, runner) -> str:
    run_campaign(traffic_light_system, traffic_light_monitor_suite,
                 traffic_light_code_watches, runner=runner,
                 duration_us=duration_us, **CAMPAIGN_KW)
    return ""


def live_campaign_transcript(duration_us: int, runner_of) -> tuple:
    agg = LiveAggregator(HeartbeatConfig(period_us=PERIOD_US))
    run_campaign(traffic_light_system, traffic_light_monitor_suite,
                 traffic_light_code_watches, runner=runner_of(agg),
                 duration_us=duration_us, **CAMPAIGN_KW)
    transcript = agg.close()
    history = [w.to_dict() for w in agg.history()]
    return transcript, history


def measure_overhead(duration_us: int, reps: int):
    """The exemplar serial campaign, heartbeats on vs off, interleaved."""
    disable()
    off_t = on_t = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run_exemplar(duration_us, SerialRunner())
        off_t = min(off_t, time.perf_counter() - start)
        agg = LiveAggregator(HeartbeatConfig(period_us=PERIOD_US))
        start = time.perf_counter()
        run_exemplar(duration_us, SerialRunner(live=agg))
        on_t = min(on_t, time.perf_counter() - start)
        agg.close()
    return {
        "campaign_off_wall_s": round(off_t, 4),
        "campaign_live_wall_s": round(on_t, 4),
        "live_disabled_ratio": round(on_t / off_t, 3),
    }


def measure_determinism(duration_us: int):
    """Serial vs 2-worker fleet at one seed: transcript + window parity."""
    disable()
    serial = live_campaign_transcript(
        duration_us, lambda agg: SerialRunner(live=agg))
    fleet = live_campaign_transcript(
        duration_us, lambda agg: FleetRunner(workers=2, live=agg))
    return {
        "transcript_identical": int(serial == fleet),
        "alerts": serial[0].count("\n") - 2,
        "windows": len(serial[1]),
    }


def main() -> None:
    quick = "--quick" in sys.argv
    reps = QUICK_REPS if quick else FULL_REPS
    deltas = QUICK_DELTAS if quick else FULL_DELTAS
    horizon = sec(1) if quick else sec(2)

    run_exemplar(sec(1), SerialRunner())  # warm caches and the allocator

    try:
        results = {
            "aggregator": measure_aggregator(deltas),
            "overhead": measure_overhead(horizon, reps),
            "determinism": measure_determinism(horizon),
            "quick": quick,
        }
    finally:
        disable()
    assert results["determinism"]["transcript_identical"] == 1

    name = "BENCH_live_quick.json" if quick else "BENCH_live.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    agg = results["aggregator"]
    print(f"aggregator: {agg['window_deltas']} window deltas "
          f"({agg['series_per_delta']} series each) at "
          f"{agg['deltas_per_sec']}/s")
    over = results["overhead"]
    print(f"heartbeat campaign: off {over['campaign_off_wall_s']}s, "
          f"live {over['campaign_live_wall_s']}s "
          f"(ratio {over['live_disabled_ratio']}x)")
    det = results["determinism"]
    print(f"determinism: serial==fleet identical="
          f"{det['transcript_identical']} ({det['alerts']} alert(s), "
          f"{det['windows']} window(s))")
    print(f"-> {out}")


if __name__ == "__main__":
    main()
