"""Benchmark package marker (shared fixtures would go here)."""
