"""E3 (paper Fig 3): the GDM as an event-driven FSM.

Checks the debug model conforms to the GDM metamodel at every size, and
measures the engine's reaction dispatch latency as the model grows — the
"waiting state, listening for commands, performing reactions" loop.

Expected shape: dispatch is dominated by binding matching, growing linearly
with binding count; conformance holds at every size.
"""

import time

from repro.comdes.reflect import system_to_model
from repro.comm.protocol import Command, CommandKind
from repro.engine.engine import DebuggerEngine
from repro.experiments.figures import fig3_gdm_metamodel
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import chain_system
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.meta.validate import validate_model

SIZES = (10, 50, 200, 500)


def build_engine(n_states):
    system = chain_system(n_states)
    model = system_to_model(system)
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    return DebuggerEngine(gdm, capture_frames=False), gdm


def test_e3_engine_dispatch_scaling(benchmark):
    """Dispatch latency vs model size; conformance at every size."""
    table = ResultTable(
        "E3 — GDM engine reaction dispatch vs model size",
        ["states", "elements", "bindings", "dispatch (us/cmd)",
         "conforms to GDM metamodel"],
    )
    dispatch_us = {}
    for size in SIZES:
        engine, gdm = build_engine(size)
        # Feed commands directly (unit-level, no simulated transport).
        from repro.comm.channel import DebugChannel
        engine.connect(DebugChannel())
        command = Command(CommandKind.STATE_ENTER,
                          f"state:walker.fsm.S{size // 2}", 0)
        loops = 300
        t0 = time.perf_counter()
        for _ in range(loops):
            engine.on_command(command)
        elapsed = (time.perf_counter() - t0) / loops * 1e6
        dispatch_us[size] = elapsed

        meta_form = gdm.to_meta_model()
        validate_model(meta_form)
        table.add_row(size, len(gdm.elements), len(gdm.bindings),
                      f"{elapsed:.1f}", True)

    table.print()
    save_artifact("e3_gdm_engine.txt", table.render())
    ascii_art, svg = fig3_gdm_metamodel()
    save_artifact("fig3_gdm_metamodel.txt", ascii_art)
    save_artifact("fig3_gdm_metamodel.svg", svg)

    # Dispatch grows with model size but stays interactive (< 50ms/cmd).
    assert dispatch_us[SIZES[-1]] < 50_000

    engine, gdm = build_engine(100)
    from repro.comm.channel import DebugChannel
    engine.connect(DebugChannel())
    command = Command(CommandKind.STATE_ENTER, "state:walker.fsm.S50", 0)
    benchmark(engine.on_command, command)
