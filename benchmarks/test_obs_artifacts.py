"""Committed observability exemplars: a Perfetto trace + a post-mortem.

Regenerates (and structurally asserts) the two artifacts the ISSUE asks
to ship:

* ``artifacts/obs_campaign.perfetto.json`` — the Chrome trace-event
  export of a small deterministic campaign, loadable as-is in
  https://ui.perfetto.dev or ``chrome://tracing``;
* ``artifacts/obs_postmortem.txt`` — an example automated post-mortem
  for a failed campaign job (fault pc, store tail, transport counters
  at time of death).

Everything here is modeled-time and fixed-seed, so re-running the suite
rewrites both files byte-identically — a dirty git tree after a test
run would itself be a determinism regression.
"""

import json

from repro.comdes.examples import traffic_light_system
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.experiments.harness import save_artifact
from repro.faults import run_campaign
from repro.fleet import SerialRunner
from repro.fleet.jobs import JobResult
from repro.obs import disable, enable
from repro.obs.export import export_campaign
from repro.obs.postmortem import campaign_postmortem
from repro.tracedb import campaign_store_root, job_store_root
from repro.util.timeunits import sec


def test_obs_artifacts(tmp_path):
    trace_dir = str(tmp_path / "campaign")
    reg, _ = enable()
    try:
        run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=SerialRunner(),
            trace_dir=trace_dir, design_kinds=("wrong_target",),
            impl_kinds=("inverted_branch",), seeds=(1,),
            duration_us=sec(1))
        snapshot = reg.snapshot()
    finally:
        disable()

    # -- Perfetto / Chrome trace-event export ---------------------------
    data = export_campaign(campaign_store_root(trace_dir), metrics=snapshot)
    doc = json.loads(data)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices and all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
    assert doc["otherData"]["metrics"]["counters"]  # registry rode along
    path = save_artifact("obs_campaign.perfetto.json",
                         data.decode("ascii"))

    # -- example post-mortem over the sealed per-job store --------------
    # A representative terminal failure: the fault-injection job died of
    # a target fault after recording 1s of model events. The error dict
    # is the exact JobResult.error shape a worker ships.
    failed = JobResult(
        1, "design/wrong_target/1",
        error={"type": "TargetFault",
               "message": "target fault at pc=42: stack underflow",
               "traceback": ("Traceback (most recent call last):\n"
                             "  File \"repro/target/cpu.py\", in _run_debug\n"
                             "TargetFault: target fault at pc=42: "
                             "stack underflow\n")},
        trace_path=job_store_root(trace_dir, 1))
    text = campaign_postmortem([failed], total_jobs=3, metrics=snapshot)
    assert "fault pc   : 42" in text
    assert "last model events" in text
    assert "transport/chaos counters at time of death:" in text
    save_artifact("obs_postmortem.txt", text)
    assert path.endswith("obs_campaign.perfetto.json")
