"""E2 (paper Fig 2): the GDM as an on-call server fed by command channels.

Measures command delivery latency and throughput for the active (RS-232)
interface across baud rates and the passive (JTAG) interface across poll
periods — the trade-off §II of the paper describes qualitatively.

Expected shape: active latency falls with baud rate and is per-event;
passive latency is bounded by poll period + scan cost and is independent of
how chatty the target code is (it is never instrumented at all).
"""

from repro.comdes.examples import traffic_light_system
from repro.comm.protocol import Command, CommandKind
from repro.engine.session import DebugSession
from repro.experiments.figures import fig2_structural_view
from repro.experiments.harness import ResultTable, save_artifact
from repro.util.timeunits import ms

RUN_US = ms(100) * 40


def _latencies(session):
    events = [e.command.latency_us for e in session.trace]
    return (sum(events) / len(events), max(events), len(events))


def _state_truth(session):
    """True occurrence time of each state change, in sequence order.

    Active emissions are time-stamped at the instant the instrumented code
    executed — ground truth for scoring the passive channel's detection lag.
    """
    return [(e.command.path, e.command.t_target)
            for e in session.trace.events(kind=CommandKind.STATE_ENTER)]


def collect_rows():
    rows = []
    truth = None
    for baud in (9600, 38400, 115200):
        session = DebugSession(traffic_light_system(), channel_kind="active",
                               baud=baud)
        session.setup().run(RUN_US)
        mean, worst, count = _latencies(session)
        rows.append((f"active RS-232 @ {baud}", count, mean, worst, 0))
        truth = _state_truth(session)
    for poll in (300, 1700, 7900):
        session = DebugSession(traffic_light_system(), channel_kind="passive",
                               poll_period_us=poll)
        session.setup().run(RUN_US)
        observed = [(e.command.path, e.command.t_host)
                    for e in session.trace.events(kind=CommandKind.STATE_ENTER)]
        # Pair the k-th observed change with the k-th true change: the
        # detection lag is poll quantization + scan + transport.
        lags = [t_seen - t_true
                for (p_seen, t_seen), (p_true, t_true)
                in zip(observed, truth) if p_seen == p_true]
        assert lags, "passive channel observed no state changes"
        cycles = session.kernel.board_of("node0").cpu.cycles
        rows.append((f"passive JTAG @ {poll}us poll", len(observed),
                     sum(lags) / len(lags), max(lags), cycles))
    return rows


def test_e2_channel_latency(benchmark):
    """Latency table over channel configurations; benchmark = dispatch cost."""
    rows = collect_rows()
    table = ResultTable(
        "E2 — command delivery latency (traffic light, 4s simulated)",
        ["channel", "events", "mean lag (us)", "max lag (us)",
         "target cycles"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    save_artifact("e2_channels.txt", table.render())
    save_artifact("fig2_structural_view.txt", fig2_structural_view())

    mean_by_name = {r[0]: r[2] for r in rows}
    # Active: latency falls as baud rises.
    assert (mean_by_name["active RS-232 @ 9600"]
            > mean_by_name["active RS-232 @ 38400"]
            > mean_by_name["active RS-232 @ 115200"])
    # Passive: latency tracks the poll period.
    assert (mean_by_name["passive JTAG @ 300us poll"]
            < mean_by_name["passive JTAG @ 7900us poll"])
    # All configurations observed the state machine.
    assert all(r[1] > 0 for r in rows)

    # Benchmark: engine-side dispatch of one command (server reaction cost).
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup()
    command = Command(CommandKind.STATE_ENTER, "state:lights.lamp.GREEN", 1)
    benchmark(session.engine.on_command, command)
