"""E5 (paper Fig 5): model visualization and runtime animation.

Measures frame capture rate during live debugging and render cost (ASCII +
SVG) as the model grows; saves the Fig 5 artifact (model with the active
state highlighted).

Expected shape: frame capture is O(model) per event; rendering stays well
under interactive budgets for paper-scale models.
"""

import time

from repro.engine.session import DebugSession
from repro.experiments.figures import fig5_animated_model
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.workloads import chain_system
from repro.gdm.scenegen import gdm_to_scene
from repro.render.ascii_art import scene_to_ascii
from repro.render.svg import scene_to_svg
from repro.util.timeunits import ms

SIZES = (5, 25, 100)


def test_e5_animation_and_rendering(benchmark):
    """Animation frames + render cost vs model size; Fig 5 artifact."""
    table = ResultTable(
        "E5 — animation and rendering vs model size",
        ["states", "events", "frames", "capture (us/frame)",
         "ascii render (ms)", "svg render (ms)"],
    )
    for size in SIZES:
        session = DebugSession(chain_system(size, period_us=ms(5)),
                               channel_kind="active")
        session.setup()
        t0 = time.perf_counter()
        session.run(ms(5) * 120)
        run_seconds = time.perf_counter() - t0
        frames = session.engine.frames
        capture_us = (run_seconds * 1e6 / max(1, len(frames)))

        scene = gdm_to_scene(session.gdm)
        t0 = time.perf_counter()
        # Large rings need a large canvas; never clip the highlighted state.
        ascii_art = scene_to_ascii(scene, max_width=1600, max_height=1200)
        ascii_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        svg = scene_to_svg(scene)
        svg_ms = (time.perf_counter() - t0) * 1000

        table.add_row(size, len(session.trace), len(frames),
                      f"{capture_us:.0f}", f"{ascii_ms:.2f}", f"{svg_ms:.2f}")
        assert len(frames) > 0
        assert "*" in ascii_art       # active state visible
        assert svg.startswith("<svg")
    table.print()
    save_artifact("e5_animation.txt", table.render())

    ascii_art, svg, _ = fig5_animated_model()
    save_artifact("fig5_animation.txt", ascii_art)
    save_artifact("fig5_animation.svg", svg)

    session = DebugSession(chain_system(50, period_us=ms(5)),
                           channel_kind="active")
    session.setup().run(ms(5) * 40)
    scene = gdm_to_scene(session.gdm)
    benchmark(scene_to_svg, scene)
