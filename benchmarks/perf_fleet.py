"""Campaign throughput through the fleet subsystem: serial vs process pool.

The scoreboard for campaign scale-out. Over the full traffic-light fault
corpus (every design and implementation kind x seeds, control included)
it measures:

* **serial_jobs_per_sec** — the :class:`SerialRunner` baseline (the
  identical-interface in-process fallback every campaign can use);
* **fleet_jobs_per_sec** — :class:`FleetRunner` at 4 workers, chunked
  dispatch over worker processes;
* **speedup_4w** — fleet over serial wall-clock. Campaign jobs are pure
  CPU, so this scales with available cores: ~1.0 on a single-core
  container, >= 2.5 expected on a 4-core host. ``cpu_count`` is recorded
  next to it so the number can be read honestly;
* **parity_identical** — 1 iff the parallel campaign's ``summary_rows()``
  and per-fault outcomes are byte-identical to the serial runner's. This
  is the hard invariant (CI floors it at 1): parallelism must never
  change results.

The payload records the scheduling configuration that produced the
number — ``runner`` (class name), the *effective* ``chunk_size`` (the
auto policy resolved against this corpus) and ``max_retries`` — so
``speedup_4w`` trajectories across PRs compare like with like instead
of silently mixing chunking/retry regimes.

Writes ``BENCH_fleet.json`` next to this file so the fleet's perf
trajectory is tracked across PRs.

Usage::

    python benchmarks/perf_fleet.py           # full corpus, best-of reps
    python benchmarks/perf_fleet.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.faults import run_campaign
from repro.faults.design import DESIGN_FAULT_KINDS
from repro.faults.implementation import IMPL_FAULT_KINDS
from repro.fleet import FleetRunner, SerialRunner

WORKERS = 4
FULL_REPS = 3
QUICK_REPS = 1


def corpus_kw(quick: bool) -> dict:
    if quick:
        return dict(
            design_kinds=("wrong_target", "remove_transition",
                          "wrong_initial"),
            impl_kinds=("inverted_branch", "init_corrupt", "store_drop"),
            seeds=(1, 2),
            duration_us=2_000_000,
        )
    return dict(
        design_kinds=tuple(DESIGN_FAULT_KINDS),
        impl_kinds=tuple(IMPL_FAULT_KINDS),
        seeds=(1, 2, 3),
        # Long enough per experiment that pool startup and chunk
        # dispatch are noise next to the simulated seconds of work.
        duration_us=8_000_000,
    )


def run_once(runner, kw):
    from repro.comdes.examples import traffic_light_system
    from repro.experiments.requirements import (
        traffic_light_code_watches, traffic_light_monitor_suite)
    start = time.perf_counter()
    result = run_campaign(traffic_light_system, traffic_light_monitor_suite,
                          traffic_light_code_watches, runner=runner, **kw)
    return result, time.perf_counter() - start


def outcome_fingerprint(result) -> str:
    rows = json.dumps(result.summary_rows(), sort_keys=True)
    outcomes = [
        (o.fault.fault_id, o.model_detected, o.model_latency_us, o.model_how,
         o.code_detected, o.code_latency_us, o.code_how, o.classified_as)
        for o in result.outcomes
    ]
    return rows + "|" + repr(outcomes) + f"|fp={result.false_positives}"


def main() -> None:
    quick = "--quick" in sys.argv
    reps = QUICK_REPS if quick else FULL_REPS
    kw = corpus_kw(quick)
    jobs = 1 + (len(kw["design_kinds"]) + len(kw["impl_kinds"])) * len(kw["seeds"])

    serial_result, _ = run_once(SerialRunner(), kw)  # warm-up + reference

    serial_s = min(run_once(SerialRunner(), kw)[1] for _ in range(reps))
    fleet_runner = FleetRunner(workers=WORKERS)
    fleet_best = None
    fleet_result = None
    for _ in range(reps):
        result, elapsed = run_once(fleet_runner, kw)
        if fleet_best is None or elapsed < fleet_best:
            fleet_best, fleet_result = elapsed, result

    parity = int(outcome_fingerprint(serial_result)
                 == outcome_fingerprint(fleet_result))

    results = {
        "corpus_jobs": jobs,
        "duration_us_per_job": kw["duration_us"],
        "workers": WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "runner": type(fleet_runner).__name__,
        "chunk_size": fleet_runner._chunk_size_for(jobs),
        "max_retries": fleet_runner.max_retries,
        "serial_s": round(serial_s, 3),
        "fleet_s": round(fleet_best, 3),
        "serial_jobs_per_sec": round(jobs / serial_s, 1),
        "fleet_jobs_per_sec": round(jobs / fleet_best, 1),
        "speedup_4w": round(serial_s / fleet_best, 2),
        "parity_identical": parity,
        "quick": quick,
    }

    name = "BENCH_fleet_quick.json" if quick else "BENCH_fleet.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"{jobs} jobs: serial {results['serial_jobs_per_sec']} jobs/s, "
          f"fleet({WORKERS}w) {results['fleet_jobs_per_sec']} jobs/s, "
          f"speedup {results['speedup_4w']}x on {results['cpu_count']} cpu(s), "
          f"parity={'OK' if parity else 'BROKEN'}")
    print(f"-> {out}")
    if not parity:
        sys.exit(1)


if __name__ == "__main__":
    main()
