"""Elastic scheduler scoreboard: steal speedup, parity, stranded recovery.

Three numbers, one per scheduler property the fleet refactor claims:

* **steal_speedup_skew** — makespan of a *skewed* synthetic corpus
  (a few heavy jobs clustered at the head, a tail of light ones) under
  static pinned chunking vs the elastic schedule (cost-hint LPT
  placement + queue stealing + preemptive partial-batch yields). Jobs
  are ``time.sleep`` units executed by real worker processes, so the
  makespan is decided by *scheduling*, not by host core count — the
  ratio is machine-independent and CI floors it. Static contiguous
  thirds of ``[10,10,10,10] + [1]*12`` serialize 42 sleep units on one
  worker; the elastic schedule lands near the 20-unit critical path. A
  third *hint-blind* arm withholds the cost hints (uniform unit
  weights), so the heavies land wherever and run-time queue stealing —
  not placement — reaches the same optimum (``steal_speedup_blind``).
* **sched_parity_identical** — a real mini-campaign through
  ``FleetRunner`` (2 workers, elastic schedule) vs ``SerialRunner``:
  summary rows and per-fault outcomes must be byte-identical. The
  any-schedule-one-answer invariant, floored at 1.
* **stranded_recovery_s** — wall-clock for two crash-on-arrival jobs
  with a 1.0s retry backoff and one retry each. The event loop gates
  retries on deadlines, so both recover concurrently (~ max of
  backoffs); the old serial stranded pass slept the *sum* (>= 2s).
  Recorded, not floored: it is a small absolute wall-time.

Writes ``BENCH_sched.json`` (or ``BENCH_sched_quick.json`` with
``--quick``) next to this file.

Usage::

    python benchmarks/perf_sched.py           # full sleep units, best-of reps
    python benchmarks/perf_sched.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.fleet import (
    ElasticScheduler,
    FleetRunner,
    ProcessBackend,
    SerialRunner,
    WorkUnit,
)

WORKERS = 3
HEAVY, LIGHT = 10, 1
COSTS = [HEAVY] * 4 + [LIGHT] * 12


class SleepJob:
    """A schedulable sleep: ``cost_hint`` units of ``unit_s`` each."""

    __slots__ = ("index", "cost_hint", "unit_s")

    def __init__(self, index: int, cost_hint: int, unit_s: float) -> None:
        self.index = index
        self.cost_hint = cost_hint
        self.unit_s = unit_s


def sleepy_execute(job: SleepJob) -> int:
    """The worker entry for synthetic jobs (``entry_ref`` target)."""
    time.sleep(job.cost_hint * job.unit_s)
    return job.index


def exiting_system():
    """System factory that kills its worker (stranded-recovery probe)."""
    os._exit(3)


def contiguous_thirds(jobs):
    """The static baseline: even contiguous slices, one per worker."""
    per, extra = divmod(len(jobs), WORKERS)
    slices, at = [], 0
    for worker in range(WORKERS):
        size = per + (1 if worker < extra else 0)
        slices.append(jobs[at:at + size])
        at += size
    return slices


def run_skew_arm(jobs, *, arm: str, chunk: int = 2):
    """One scheduling regime over the skew corpus; returns (s, sched).

    ``static``  — contiguous thirds pinned to their worker, no stealing:
                  the pre-refactor chunking baseline.
    ``elastic`` — cost-hint LPT placement + stealing: heavy units are
                  *placed* apart, landing on the 20-unit optimum.
    ``blind``   — hints withheld (uniform unit costs) + stealing: the
                  heavies land wherever, and queue stealing rebalances
                  at run time — same optimum, reached the other way.
    """
    backend = ProcessBackend(slot_count=WORKERS,
                             entry_ref="perf_sched:sleepy_execute")
    scheduler = ElasticScheduler(backend, steal=arm != "static",
                                 cost_placement=arm == "elastic")
    if arm == "static":
        units = [WorkUnit(chunk_jobs, pinned=worker)
                 for worker, chunk_jobs in enumerate(contiguous_thirds(jobs))]
    else:
        units = [WorkUnit(jobs[i:i + chunk],
                          cost=None if arm == "elastic" else chunk)
                 for i in range(0, len(jobs), chunk)]
    start = time.perf_counter()
    try:
        results = scheduler.run(units)
    finally:
        backend.close()
    elapsed = time.perf_counter() - start
    assert results == {job.index: job.index for job in jobs}, \
        "scheduler lost or misrouted synthetic results"
    return elapsed, scheduler


def outcome_fingerprint(result) -> str:
    rows = json.dumps(result.summary_rows(), sort_keys=True)
    outcomes = [
        (o.fault.fault_id, o.model_detected, o.model_latency_us, o.model_how,
         o.code_detected, o.code_latency_us, o.code_how, o.classified_as)
        for o in result.outcomes
    ]
    return rows + "|" + repr(outcomes) + f"|fp={result.false_positives}"


def measure_parity() -> int:
    from repro.faults import run_campaign
    from repro.comdes.examples import traffic_light_system
    from repro.experiments.requirements import (
        traffic_light_code_watches, traffic_light_monitor_suite)
    kw = dict(design_kinds=("wrong_target",), impl_kinds=("inverted_branch",),
              seeds=(1, 2), duration_us=1_000_000)
    serial = run_campaign(traffic_light_system, traffic_light_monitor_suite,
                          traffic_light_code_watches, runner=SerialRunner(),
                          **kw)
    fleet = run_campaign(traffic_light_system, traffic_light_monitor_suite,
                         traffic_light_code_watches,
                         runner=FleetRunner(workers=2, chunk_size=2), **kw)
    return int(outcome_fingerprint(serial) == outcome_fingerprint(fleet))


def measure_stranded_recovery(backoff_s: float) -> float:
    from repro.codegen import InstrumentationPlan
    from repro.experiments.requirements import (
        traffic_light_code_watches, traffic_light_monitor_suite)
    from repro.fleet import JobSpec, callable_ref
    specs = [
        JobSpec(i, "design", kind, 1, 1_000_000,
                "perf_sched:exiting_system",
                callable_ref(traffic_light_monitor_suite),
                callable_ref(traffic_light_code_watches),
                InstrumentationPlan.full())
        for i, kind in enumerate(("wrong_target", "remove_transition"))
    ]
    runner = FleetRunner(workers=2, chunk_size=1, max_retries=1,
                         retry_backoff_s=backoff_s)
    start = time.perf_counter()
    results = runner.run(specs)
    elapsed = time.perf_counter() - start
    assert all(r.failed and r.error["type"] == "WorkerCrashed"
               for r in results), "stranded probe produced a verdict?"
    return elapsed


def main() -> None:
    quick = "--quick" in sys.argv
    unit_s = 0.01 if quick else 0.025
    reps = 1 if quick else 3
    backoff_s = 0.5 if quick else 1.0
    jobs = [SleepJob(i, cost, unit_s) for i, cost in enumerate(COSTS)]

    static_best = elastic_best = blind_best = None
    elastic_sched = blind_sched = None
    for _ in range(reps):
        static_s, _ = run_skew_arm(jobs, arm="static")
        elastic_s, sched = run_skew_arm(jobs, arm="elastic")
        blind_s, b_sched = run_skew_arm(jobs, arm="blind")
        if static_best is None or static_s < static_best:
            static_best = static_s
        if elastic_best is None or elastic_s < elastic_best:
            elastic_best, elastic_sched = elastic_s, sched
        if blind_best is None or blind_s < blind_best:
            blind_best, blind_sched = blind_s, b_sched

    parity = measure_parity()
    stranded_s = measure_stranded_recovery(backoff_s)

    results = {
        "workers": WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "corpus_jobs": len(COSTS),
        "cost_profile": f"{COSTS.count(HEAVY)}x{HEAVY} + "
                        f"{COSTS.count(LIGHT)}x{LIGHT}",
        "sleep_unit_ms": unit_s * 1000,
        "static_units": max(sum(job.cost_hint for job in chunk_jobs)
                            for chunk_jobs in contiguous_thirds(jobs)),
        "static_s": round(static_best, 3),
        "elastic_s": round(elastic_best, 3),
        "blind_s": round(blind_best, 3),
        "steal_speedup_skew": round(static_best / elastic_best, 2),
        "steal_speedup_blind": round(static_best / blind_best, 2),
        "unit_steals": elastic_sched.steals,
        "unit_preemptions": elastic_sched.preemptions,
        "blind_unit_steals": blind_sched.steals,
        "blind_unit_preemptions": blind_sched.preemptions,
        "sched_parity_identical": parity,
        "stranded_backoff_s": backoff_s,
        "stranded_jobs": 2,
        "stranded_recovery_s": round(stranded_s, 3),
        "quick": quick,
    }

    name = "BENCH_sched_quick.json" if quick else "BENCH_sched.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"skew corpus ({results['cost_profile']} sleep units, "
          f"{WORKERS} workers): static {results['static_s']}s, "
          f"elastic {results['elastic_s']}s "
          f"({results['steal_speedup_skew']}x, LPT placement), "
          f"hint-blind {results['blind_s']}s "
          f"({results['steal_speedup_blind']}x via "
          f"{results['blind_unit_steals']} steals); "
          f"parity={'OK' if parity else 'BROKEN'}; "
          f"stranded recovery {results['stranded_recovery_s']}s "
          f"(2 jobs @ {backoff_s}s backoff)")
    print(f"-> {out}")
    if not parity:
        sys.exit(1)


if __name__ == "__main__":
    main()
