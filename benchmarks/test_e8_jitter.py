"""E8 (paper §III claim): Distributed Timed Multitasking eliminates I/O jitter.

"Input and output signals are latched at task (transaction) start and
deadline instants, respectively, resulting in the elimination of I/O jitter
at both actor task and transaction levels."

Ablation: the same cruise-control system runs with and without deadline
latching under increasing interference load; output jitter of the plant's
``speed`` signal is measured.

Expected shape: latched jitter is exactly 0 at every load; unlatched jitter
grows with interference until deadlines start missing.
"""

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import cruise_control_system
from repro.experiments.harness import ResultTable, save_artifact
from repro.rtos.kernel import DtmKernel
from repro.rtos.task import LoadTask
from repro.util.timeunits import ms

LOADS_US = (0, 300, 700, 1200)
RUN_US = ms(20) * 80


def run_once(latched, load_us):
    system = cruise_control_system()
    firmware = generate_firmware(system, InstrumentationPlan.none())
    kernel = DtmKernel(system, firmware, latched=latched)
    if load_us:
        # Interference on the plant's node, above the plant's priority.
        kernel.add_load_task(LoadTask("noise", "node1", period_us=3100,
                                      demand_us=load_us, priority=0))
    kernel.run(RUN_US)
    jitter = kernel.jitter.jitter_us("speed", skip=3)
    mean_phase = kernel.jitter.mean_phase_us("speed", skip=3)
    return jitter, mean_phase, kernel.deadline_misses


def test_e8_jitter_elimination(benchmark):
    """Jitter table: latched vs unlatched across interference levels."""
    table = ResultTable(
        "E8 — output jitter of 'speed' vs interference (80 jobs)",
        ["interference (us per 3.1ms)", "DTM latched jitter (us)",
         "unlatched jitter (us)", "latched mean phase (us)", "misses"],
    )
    results = {}
    for load_us in LOADS_US:
        latched_jitter, latched_phase, misses = run_once(True, load_us)
        unlatched_jitter, _, _ = run_once(False, load_us)
        results[load_us] = (latched_jitter, unlatched_jitter)
        table.add_row(load_us, latched_jitter, unlatched_jitter,
                      f"{latched_phase:.0f}", misses)
    table.print()
    save_artifact("e8_jitter.txt", table.render())

    # The DTM claim: zero jitter with latching, at every interference level.
    for load_us, (latched, unlatched) in results.items():
        assert latched == 0, f"latched jitter {latched} at load {load_us}"
    # Without latching, interference shows through as output jitter.
    assert results[LOADS_US[-1]][1] > 0
    assert results[LOADS_US[-1]][1] >= results[LOADS_US[1]][1]
    # Latched outputs appear exactly at the deadline (phase == deadline).
    system = cruise_control_system()
    _, phase, _ = run_once(True, 0)
    assert round(phase) == system.actor("plant").task.deadline_us

    benchmark(run_once, True, 700)
