"""E9 (paper §II claim): the model debugger detects design errors and
implementation errors; design errors are its "primary job".

Fault-injection campaign over the traffic-light system: 8 design-fault
kinds and 8 implementation-fault kinds, three seeds each. The model-level
debugger (GMDF + requirement monitors) competes with the code-level
baseline (source debugger + 4 hardware watchpoints with range predicates).

Expected shape: the model debugger detects a large majority of both
categories; the code debugger catches crashes and little else — on design
errors in particular it is nearly blind, which is the paper's motivation.
"""

from repro.comdes.examples import traffic_light_system
from repro.experiments.harness import ResultTable, save_artifact
from repro.experiments.requirements import (
    traffic_light_code_watches, traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.util.timeunits import sec


def test_e9_detection_campaign(benchmark):
    """The campaign table (the reproduction's main quantitative result)."""
    result = run_campaign(
        traffic_light_system,
        traffic_light_monitor_suite,
        traffic_light_code_watches(),
        seeds=(1, 2, 3),
        duration_us=sec(4),
    )

    table = ResultTable(
        "E9 — fault detection: model debugger vs code debugger",
        ["category", "faults", "model detect", "code detect",
         "model latency (ms)", "code latency (ms)"],
    )
    for row in result.summary_rows():
        table.add_row(
            row["category"], row["faults"],
            f"{row['model_rate'] * 100:.0f}%",
            f"{(row['code_rate'] or 0) * 100:.0f}%",
            "-" if row["model_latency_us"] is None
            else f"{row['model_latency_us'] / 1000:.0f}",
            "-" if row["code_latency_us"] is None
            else f"{row['code_latency_us'] / 1000:.0f}",
        )
    table.print()

    detail = ResultTable(
        "E9 — per-fault outcomes",
        ["fault", "model", "how", "code", "how", "description"],
    )
    for outcome in result.outcomes:
        detail.add_row(
            outcome.fault.fault_id,
            outcome.model_detected, outcome.model_how,
            outcome.code_detected, outcome.code_how,
            outcome.fault.description[:48],
        )
    save_artifact("e9_detection.txt",
                  table.render() + "\n\n" + detail.render())

    # No false positives on the fault-free control run.
    assert result.false_positives == 0
    # The headline shape: model-level detection dominates.
    assert result.detection_rate("design", "model") >= 0.6
    assert result.detection_rate("implementation", "model") >= 0.6
    assert (result.detection_rate("design", "model")
            > (result.detection_rate("design", "code") or 0.0))
    assert (result.detection_rate("implementation", "model")
            >= (result.detection_rate("implementation", "code") or 0.0))

    # Benchmark one full model-debugger fault run.
    from repro.faults.campaign import _run_model_debugger
    from repro.faults.design import inject_design_fault
    from repro.codegen import InstrumentationPlan, generate_firmware
    mutant, _ = inject_design_fault(traffic_light_system(), "wrong_target", 1)
    firmware = generate_firmware(mutant, InstrumentationPlan.full())
    benchmark(_run_model_debugger, mutant, firmware,
              traffic_light_monitor_suite, sec(2))
