"""Overhead and determinism scoreboard for the chaos/retry wrappers.

Two claims gated here:

* **zero overhead when disabled** — a ``RetryingLink(ChaosLink(...))``
  stack with every fault rate at 0.0 must poll at effectively the bare
  link's rate. Measured as the wall-clock ratio of a 64-watch scatter
  read through the wrapped vs. the bare :class:`JtagLink`
  (``overhead.retry_chaos_disabled_ratio``, ceiling-gated), plus the
  raw per-op wrapper cost over a free :class:`DirectLink` where the
  wrapper is all there is (informational, not gated — the inner op
  costs nothing, so the ratio is meaningless there);
* **determinism at a fixed seed** — an enabled chaos schedule replayed
  at the same seed must be byte-identical (fault schedule, stats and
  results), and a different seed must diverge
  (``determinism_identical`` / ``determinism_diverges``, floor-gated).

Writes ``BENCH_chaos.json`` (or ``BENCH_chaos_quick.json`` under
``--quick``) next to this file.

Usage::

    python benchmarks/perf_chaos.py           # full run
    python benchmarks/perf_chaos.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.comm.chaos import ChaosConfig, ChaosLink
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import DirectLink, JtagLink
from repro.comm.retry import RetryPolicy, RetryingLink
from repro.comm.usb import UsbTransport
from repro.errors import TransientLinkError
from repro.target.board import Board, DebugPort
from repro.target.memory import RAM_BASE

WATCHES = 64
FULL_REPS = 40
QUICK_REPS = 5
DIRECT_OPS = 2000


def watch_addrs(count: int):
    if count <= 2:
        return [RAM_BASE + i for i in range(count)]
    main = [RAM_BASE + i for i in range(count - 2)]
    return main + [RAM_BASE + 1000, RAM_BASE + 1001]


def bare_jtag():
    board = Board()
    probe = JtagProbe(TapController(DebugPort(board)), tck_hz=4_000_000,
                      transport=UsbTransport())
    return JtagLink(probe)


def wrap_disabled(link):
    return RetryingLink(ChaosLink(link, ChaosConfig()), RetryPolicy())


def best_elapsed(link, addrs, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        link.read_scatter(addrs)
        best = min(best, time.perf_counter() - start)
    return best


def measure_overhead(reps: int):
    addrs = watch_addrs(WATCHES)
    bare = bare_jtag()
    wrapped = wrap_disabled(bare_jtag())

    # modeled costs must be identical: the disabled stack adds zero
    # modeled latency, so budgets cannot tell the links apart
    _, bare_cost = bare.read_scatter(addrs)
    _, wrapped_cost = wrapped.read_scatter(addrs)
    assert bare_cost == wrapped_cost, (bare_cost, wrapped_cost)

    bare_t = best_elapsed(bare, addrs, reps)
    wrapped_t = best_elapsed(wrapped, addrs, reps)

    # raw wrapper cost where the inner link is free: per-op overhead in
    # nanoseconds of the whole retry+chaos stack (informational)
    direct = wrap_disabled(DirectLink(Board()))
    start = time.perf_counter()
    for _ in range(DIRECT_OPS):
        direct.read_scatter(addrs[:8])
    per_op_ns = (time.perf_counter() - start) / DIRECT_OPS * 1e9

    return {
        "watches": WATCHES,
        "bare_poll_us": round(bare_t * 1e6, 1),
        "wrapped_poll_us": round(wrapped_t * 1e6, 1),
        "retry_chaos_disabled_ratio": round(wrapped_t / bare_t, 3),
        "wrapper_stack_ns_per_op": round(per_op_ns, 1),
        "modeled_cost_identical": 1,
    }


def chaos_fingerprint(seed: int):
    """A seeded chaos run's complete observable record."""
    board = Board()
    for offset in range(8):
        board.memory.poke(RAM_BASE + offset, offset * 3)
    link = RetryingLink(
        ChaosLink(DirectLink(board),
                  ChaosConfig(seed=seed, transient_error=0.3,
                              read_corrupt=0.2, latency_spike=0.1,
                              record_schedule=True)),
        RetryPolicy(max_attempts=6, backoff_us=100, seed=seed))
    addrs = [RAM_BASE + i for i in range(8)]
    results = []
    for _ in range(200):
        try:
            results.append(link.read_scatter(addrs))
        except TransientLinkError:
            results.append("transient")
    return (results, link.inner.schedule, link.stats(), link.inner.stats())


def measure_determinism():
    first, again, other = (chaos_fingerprint(s) for s in (7, 7, 8))
    return {
        "determinism_identical": int(first == again),
        "determinism_diverges": int(first != other),
        "faults_injected": first[3]["transient_errors"]
        + first[3]["reads_corrupted"] + first[3]["latency_spikes"],
    }


def main() -> None:
    quick = "--quick" in sys.argv
    reps = QUICK_REPS if quick else FULL_REPS
    measure_overhead(1)  # warm up caches and the allocator

    results = {
        "overhead": measure_overhead(reps),
        "determinism": measure_determinism(),
        "quick": quick,
    }
    assert results["determinism"]["determinism_identical"] == 1
    assert results["determinism"]["determinism_diverges"] == 1

    name = "BENCH_chaos_quick.json" if quick else "BENCH_chaos.json"
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), name)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    over = results["overhead"]
    print(f"64-watch poll: bare {over['bare_poll_us']}us, "
          f"wrapped {over['wrapped_poll_us']}us "
          f"(ratio {over['retry_chaos_disabled_ratio']}x, "
          f"stack cost {over['wrapper_stack_ns_per_op']}ns/op)")
    det = results["determinism"]
    print(f"determinism: identical={det['determinism_identical']} "
          f"diverges={det['determinism_diverges']} "
          f"({det['faults_injected']} faults injected)")
    print(f"-> {out}")


if __name__ == "__main__":
    main()
