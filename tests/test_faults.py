"""Tests for fault injectors and the detection campaign."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.comdes.examples import traffic_light_system
from repro.errors import ReproError
from repro.faults import (
    DESIGN_FAULT_KINDS,
    IMPL_FAULT_KINDS,
    inject_design_fault,
    inject_implementation_fault,
    run_campaign,
)
from repro.experiments import (
    traffic_light_code_watches, traffic_light_monitor_suite,
)
from repro.util.timeunits import sec


class TestDesignFaults:
    def test_mutant_is_a_copy(self):
        original = traffic_light_system()
        before = len(original.actor("lights").network
                     .block("lamp").machine.transitions)
        mutant, fault = inject_design_fault(original, "remove_transition", 1)
        assert fault.category == "design"
        assert len(original.actor("lights").network
                   .block("lamp").machine.transitions) == before
        assert len(mutant.actor("lights").network
                   .block("lamp").machine.transitions) == before - 1

    def test_injection_is_seed_deterministic(self):
        a = inject_design_fault(traffic_light_system(), "wrong_target", 7)[1]
        b = inject_design_fault(traffic_light_system(), "wrong_target", 7)[1]
        assert a.description == b.description

    def test_all_kinds_apply_or_decline_cleanly(self):
        for kind in DESIGN_FAULT_KINDS:
            mutant, fault = inject_design_fault(traffic_light_system(), kind, 3)
            if mutant is None:
                assert fault is None
                continue
            # Mutants still compile and run.
            firmware = generate_firmware(mutant)
            run_firmware_lockstep(mutant, firmware, 10)

    def test_inapplicable_kind_returns_none(self):
        # Traffic light has no gain blocks.
        mutant, fault = inject_design_fault(traffic_light_system(),
                                            "gain_sign", 1)
        assert mutant is None and fault is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            inject_design_fault(traffic_light_system(), "martian", 1)

    def test_mutant_behaviour_differs_for_wrong_initial(self):
        original = traffic_light_system()
        mutant, _ = inject_design_fault(original, "wrong_initial", 1)
        assert (original.lockstep_run(10) != mutant.lockstep_run(10))


class TestImplementationFaults:
    def test_firmware_copy_not_aliased(self):
        firmware = generate_firmware(traffic_light_system())
        mutant, fault = inject_implementation_fault(firmware, "op_swap", 1)
        assert fault.category == "implementation"
        diffs = [i for i, (a, b) in enumerate(zip(firmware.code, mutant.code))
                 if a != b]
        assert len(diffs) == 1

    def test_instrumentation_never_mutated(self):
        firmware = generate_firmware(traffic_light_system(),
                                     InstrumentationPlan.full())
        emit_pcs = {pc for pc, i in enumerate(firmware.code)
                    if i.op == "EMIT"}
        protected = set()
        for pc in emit_pcs:
            protected.update({pc, pc - 1, pc - 2, pc - 3})
        for kind in IMPL_FAULT_KINDS:
            for seed in (1, 2):
                mutant, fault = inject_implementation_fault(firmware, kind, seed)
                if mutant is None:
                    continue
                diffs = [i for i, (a, b) in
                         enumerate(zip(firmware.code, mutant.code)) if a != b]
                assert not (set(diffs) & protected), (kind, seed, fault)

    def test_seed_determinism(self):
        firmware = generate_firmware(traffic_light_system())
        a = inject_implementation_fault(firmware, "const_corrupt", 5)[1]
        b = inject_implementation_fault(firmware, "const_corrupt", 5)[1]
        assert a.description == b.description

    def test_unknown_kind_rejected(self):
        firmware = generate_firmware(traffic_light_system())
        with pytest.raises(ReproError):
            inject_implementation_fault(firmware, "cosmic_ray", 1)


class TestGrownCorpusKinds:
    """The PR-4 corpus growth: guard inversion + stuck-at signal value."""

    def test_guard_inversion_registered_and_applies(self):
        assert "guard_inversion" in DESIGN_FAULT_KINDS
        mutant, fault = inject_design_fault(traffic_light_system(),
                                            "guard_inversion", 1)
        assert mutant is not None
        assert "guard inverted" in fault.description
        # the mutant still compiles and runs (structural validity)
        firmware = generate_firmware(mutant)
        run_firmware_lockstep(mutant, firmware, 10)

    def test_guard_inversion_changes_behaviour(self):
        original = traffic_light_system()
        mutant, _ = inject_design_fault(original, "guard_inversion", 1)
        assert original.lockstep_run(40) != mutant.lockstep_run(40)

    def test_stuck_at_signal_registered_and_applies(self):
        assert "stuck_at_signal" in IMPL_FAULT_KINDS
        firmware = generate_firmware(traffic_light_system())
        mutant, fault = inject_implementation_fault(firmware,
                                                    "stuck_at_signal", 1)
        assert mutant is not None
        assert "stuck-at" in fault.description
        assert ".in." in fault.description  # targets a latched input word

    def test_stuck_at_signal_rewrites_exactly_one_load(self):
        firmware = generate_firmware(traffic_light_system())
        mutant, _ = inject_implementation_fault(firmware, "stuck_at_signal", 3)
        diffs = [(a, b) for a, b in zip(firmware.code, mutant.code) if a != b]
        assert len(diffs) == 1
        old, new = diffs[0]
        assert old.op == "LOAD" and new.op == "PUSH"
        assert new.arg in (0, 1)


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(
            traffic_light_system,
            traffic_light_monitor_suite,
            traffic_light_code_watches(),
            design_kinds=("wrong_target", "remove_transition", "wrong_initial"),
            impl_kinds=("inverted_branch", "store_drop"),
            seeds=(1, 2),
            duration_us=sec(4),
        )

    def test_no_false_positives(self, result):
        assert result.false_positives == 0

    def test_model_debugger_detects_design_errors(self, result):
        assert result.detection_rate("design", "model") >= 0.5

    def test_model_beats_code_on_design_errors(self, result):
        model = result.detection_rate("design", "model")
        code = result.detection_rate("design", "code") or 0.0
        assert model > code

    def test_latency_reported_for_detections(self, result):
        for outcome in result.outcomes:
            if outcome.model_detected:
                assert outcome.model_latency_us is not None

    def test_summary_rows_shape(self, result):
        rows = result.summary_rows()
        assert {row["category"] for row in rows} == {"design",
                                                     "implementation"}
        for row in rows:
            assert 0.0 <= row["model_rate"] <= 1.0

    def test_detections_carry_oracle_verdicts(self, result):
        for outcome in result.outcomes:
            if outcome.model_detected:
                assert outcome.classified_as in ("design", "implementation",
                                                 "consistent")
            else:
                assert outcome.classified_as == ""

    def test_classification_accuracy_on_clear_cut_faults(self):
        # wrong_target is a pure model bug; inverted_branch a pure code
        # bug — the differential oracle must call both correctly.
        result = run_campaign(
            traffic_light_system,
            traffic_light_monitor_suite,
            traffic_light_code_watches(),
            design_kinds=("wrong_target",),
            impl_kinds=("inverted_branch",),
            seeds=(1,),
            duration_us=sec(4),
        )
        verdicts = {o.fault.category: o.classified_as
                    for o in result.outcomes if o.model_detected}
        assert verdicts.get("design") == "design"
        assert verdicts.get("implementation") == "implementation"
        assert result.classification_accuracy() == 1.0
