"""The elastic scheduler core: steal-schedule permutation invariance,
deadline/retry bookkeeping on a virtual clock, and crash/timeout
containment against the process backend.

The load-bearing property: ANY forced interleaving/steal order over any
worker count and chunking yields byte-identical canonical merge,
campaign fingerprint, trace store and live-alert transcript vs
``SerialRunner`` at the same master seed. Hypothesis drives the
interleavings through :class:`SteppedInlineBackend`, which executes the
real ``run_job`` path one item per poll on a caller-chosen virtual
worker.
"""

import filecmp
import os
import pickle
import shutil
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import InstrumentationPlan
from repro.comdes.examples import traffic_light_system
from repro.errors import FleetError
from repro.experiments.requirements import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.fleet import (
    ElasticScheduler,
    FleetRunner,
    InlineBackend,
    JobSpec,
    SerialRunner,
    SteppedInlineBackend,
    WorkUnit,
    callable_ref,
    enumerate_campaign_jobs,
    merge_results,
    serial_live_scope,
    unit_cost,
)
from repro.fleet.sched import VirtualClock
from repro.fleet.worker import run_job, run_unit_stealable
from repro.obs.live import LiveAggregator
from repro.tracedb import campaign_store_root
from repro.util.timeunits import sec


def exiting_system():
    """A system factory that kills its worker process outright."""
    os._exit(3)


def hanging_system():
    """A system factory that wedges its worker forever."""
    time.sleep(600)


def spec(index, system_ref, kind="wrong_target"):
    return JobSpec(index, "design", kind, 1, sec(1), system_ref,
                   callable_ref(traffic_light_monitor_suite),
                   callable_ref(traffic_light_code_watches),
                   InstrumentationPlan.full())


def chunked(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


# ---------------------------------------------------------------------------
# units, cost hints, pickling


class TestWorkUnits:
    def test_empty_unit_is_an_error(self):
        with pytest.raises(FleetError):
            WorkUnit([])

    def test_unit_cost_sums_hints(self):
        a = spec(0, "m:f")
        b = spec(1, "m:f")
        a.cost_hint, b.cost_hint = 10, 3
        assert unit_cost([a, b]) == 13

    def test_unit_cost_falls_back_to_uniform_when_any_hint_missing(self):
        a = spec(0, "m:f")
        b = spec(1, "m:f")
        a.cost_hint = 10_000
        assert b.cost_hint is None
        assert unit_cost([a, b]) == 2
        assert unit_cost([]) == 1

    def test_cost_hint_validation(self):
        with pytest.raises(FleetError):
            JobSpec(0, "design", "k", 1, sec(1), "m:f", "m:g", "m:h",
                    InstrumentationPlan.full(), cost_hint=0)

    def test_cost_hint_round_trips_through_pickle(self):
        s = spec(3, callable_ref(traffic_light_system))
        s.cost_hint = 42
        clone = pickle.loads(pickle.dumps(s))
        assert clone.cost_hint == 42
        assert clone.job_id == s.job_id

    def test_pre_cost_hint_pickles_deserialize_with_none(self):
        # a payload serialized before the field existed has no
        # cost_hint key in its state; restoring must not AttributeError
        s = spec(3, callable_ref(traffic_light_system))
        state = s.__getstate__()
        del state["cost_hint"]
        clone = JobSpec.__new__(JobSpec)
        clone.__setstate__(state)
        assert clone.cost_hint is None
        assert clone.job_id == s.job_id

    def test_enumerate_stamps_activation_cost_hints(self):
        specs = enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, plan=InstrumentationPlan.full(),
            design_kinds=("wrong_target",), impl_kinds=("init_corrupt",),
            comm_kinds=("frame_loss",), seeds=(1,), duration_us=sec(1))
        by_category = {s.category: s.cost_hint for s in specs}
        assert all(h is not None and h >= 1 for h in by_category.values())
        # design/implementation execute an extra phase vs control/comm
        assert by_category["design"] > by_category["control"]
        assert by_category["implementation"] > by_category["comm"]
        assert by_category["control"] == by_category["comm"]


# ---------------------------------------------------------------------------
# permutation invariance, fast half: pure bookkeeping under any schedule


class _Item:
    __slots__ = ("index", "cost_hint")

    def __init__(self, index, cost_hint=None):
        self.index = index
        self.cost_hint = cost_hint


@st.composite
def schedules(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    sizes = []
    left = n
    while left:
        size = draw(st.integers(min_value=1, max_value=left))
        sizes.append(size)
        left -= size
    workers = draw(st.integers(min_value=1, max_value=4))
    order = draw(st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=64))
    hints = draw(st.one_of(
        st.none(),
        st.lists(st.integers(min_value=1, max_value=50),
                 min_size=n, max_size=n)))
    return n, sizes, workers, order, hints


class TestAnyScheduleIsLossless:
    @given(schedules())
    @settings(max_examples=80, deadline=None)
    def test_every_item_executes_exactly_once_and_lands_on_its_index(
            self, schedule):
        n, sizes, workers, order, hints = schedule
        items = [_Item(i, hints[i] if hints else None) for i in range(n)]
        executions = [0] * n

        def execute(item):
            executions[item.index] += 1
            return ("payload", item.index)

        def choose(busy, step):
            return busy[order[step % len(order)] % len(busy)]

        units = []
        offset = 0
        for size in sizes:
            units.append(WorkUnit(items[offset:offset + size]))
            offset += size
        scheduler = ElasticScheduler(
            SteppedInlineBackend(workers, choose, execute))
        results = scheduler.run(units)
        assert executions == [1] * n
        assert results == {i: ("payload", i) for i in range(n)}


# ---------------------------------------------------------------------------
# permutation invariance, real half: campaign + store + transcript bytes

KW = dict(design_kinds=("wrong_target", "remove_transition"),
          impl_kinds=(), comm_kinds=(), seeds=(1,), duration_us=sec(1),
          master_seed=77)


def _campaign_under(schedule_run, trace_dir):
    specs = enumerate_campaign_jobs(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, plan=InstrumentationPlan.full(),
        trace_dir=trace_dir, **KW)
    aggregator = LiveAggregator()
    results = schedule_run(specs, aggregator)
    merged = merge_results(specs, results, trace_dir=trace_dir)
    return merged, aggregator.close()


def _fingerprint(result):
    return ([(o.fault.fault_id if o.fault else "",
              o.model_detected, o.model_latency_us,
              o.model_how, o.code_detected, o.code_latency_us,
              o.classified_as) for o in result.outcomes],
            result.summary_rows())


def _store_bytes(trace_dir):
    root = campaign_store_root(trace_dir)
    out = {}
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            with open(path, "rb") as handle:
                out[name] = handle.read()
    return out


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    trace_dir = str(tmp_path_factory.mktemp("sched_serial") / "traces")

    def serial(specs, aggregator):
        return SerialRunner(live=aggregator).run(specs)

    merged, transcript = _campaign_under(serial, trace_dir)
    return _fingerprint(merged), _store_bytes(trace_dir), transcript


class TestStealScheduleByteIdentity:
    @given(workers=st.integers(min_value=1, max_value=4),
           chunk=st.integers(min_value=1, max_value=4),
           order=st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=24))
    @settings(max_examples=6, deadline=None)
    def test_forced_interleavings_match_serial_byte_for_byte(
            self, serial_reference, workers, chunk, order):
        ref_fingerprint, ref_store, ref_transcript = serial_reference
        trace_dir = tempfile.mkdtemp(prefix="sched_hyp_")
        shutil.rmtree(trace_dir)  # enumerate wants to create it fresh

        def choose(busy, step):
            return busy[order[step % len(order)] % len(busy)]

        def stepped(specs, aggregator):
            with serial_live_scope(aggregator):
                scheduler = ElasticScheduler(
                    SteppedInlineBackend(workers, choose, run_job))
                by_index = scheduler.run(
                    [WorkUnit(c) for c in chunked(specs, chunk)])
            return [by_index[s.index] for s in specs]

        try:
            merged, transcript = _campaign_under(stepped, trace_dir)
            assert _fingerprint(merged) == ref_fingerprint
            assert _store_bytes(trace_dir) == ref_store
            assert transcript == ref_transcript
        finally:
            shutil.rmtree(trace_dir, ignore_errors=True)

    def test_batch_and_serial_runners_share_the_scheduler_core(self):
        # the policy shells really do dispatch through sched.py: their
        # inline schedules produce the canonical serial answer
        from repro.fleet import BatchRunner
        specs = enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, plan=InstrumentationPlan.full(),
            **KW)
        serial = SerialRunner().run(specs)
        batch = BatchRunner().run(specs)
        key = lambda results: [(r.index, r.status) for r in results]
        assert key(serial) == key(batch)


# ---------------------------------------------------------------------------
# deadline/retry bookkeeping on a virtual clock (no processes, no sleeps)


class _CrashOnceBackend:
    """Single inline slot whose execution of a marked item dies once."""

    supports_steal = False
    supports_kill = False
    slot_count = 1

    def __init__(self, crash_indexes):
        self.to_crash = set(crash_indexes)
        self._events = []

    def dispatch(self, slot, uid, items):
        for offset, item in enumerate(items):
            if item.index in self.to_crash:
                self.to_crash.discard(item.index)
                self._events.append(("died", slot, uid))
                return
            self._events.append(("result", slot, uid, ("ok", item.index)))
        self._events.append(("done", slot, uid))

    def poll(self, timeout_s):
        events, self._events = self._events, []
        return events

    def close(self):
        pass


class _HangingBackend:
    """One slot that never answers; polling only advances the clock."""

    supports_steal = False
    supports_kill = True
    slot_count = 1

    def __init__(self, clock):
        self.clock = clock
        self.kills = 0

    def dispatch(self, slot, uid, items):
        pass

    def kill(self, slot):
        self.kills += 1

    def poll(self, timeout_s):
        self.clock.sleep(timeout_s if timeout_s else 0.1)
        return []

    def close(self):
        pass


class TestVirtualClockRetryBookkeeping:
    def test_backoff_is_a_deadline_not_a_sleep_loop_stall(self):
        clock = VirtualClock()
        backend = _CrashOnceBackend({1})
        scheduler = ElasticScheduler(
            backend, max_retries=2, retry_backoff_s=1.0, clock=clock,
            cost_placement=False)
        items = [_Item(0), _Item(1), _Item(2)]
        results = scheduler.run([WorkUnit(items)])
        assert results == {0: ("ok", 0), 1: ("ok", 1), 2: ("ok", 2)}
        # the retry waited exactly one backoff deadline on the clock
        assert clock.now() == pytest.approx(1.0)
        assert scheduler.stranded_items == {1}

    def test_exhausted_budget_goes_through_the_terminal_policy(self):
        clock = VirtualClock()
        terminal = []

        def terminal_result(item, kind, retries):
            terminal.append((item.index, kind, retries))
            return ("terminal", item.index)

        backend = _CrashOnceBackend({1})
        backend.to_crash = {1, "always"}

        def dispatch(slot, uid, items, _orig=backend.dispatch):
            # crash every attempt at item 1
            backend.to_crash.add(1)
            _orig(slot, uid, items)

        backend.dispatch = dispatch
        scheduler = ElasticScheduler(
            backend, max_retries=2, retry_backoff_s=0.5, clock=clock,
            cost_placement=False, terminal_result=terminal_result)
        results = scheduler.run([WorkUnit([_Item(0), _Item(1)])])
        assert results[0] == ("ok", 0)
        assert results[1] == ("terminal", 1)
        assert terminal == [(1, "crashed", 2)]
        # attempts waited 0.5 then 1.0 on the clock — exponential,
        # deadline-based, and concurrent with the rest of the loop
        assert clock.now() == pytest.approx(1.5)

    def test_no_terminal_policy_raises_instead_of_fabricating(self):
        backend = _CrashOnceBackend(set())

        def dispatch(slot, uid, items):
            backend._events.append(("died", slot, uid))

        backend.dispatch = dispatch
        scheduler = ElasticScheduler(backend, max_retries=0,
                                     clock=VirtualClock())
        with pytest.raises(FleetError, match="no retry budget"):
            scheduler.run([WorkUnit([_Item(0)])])

    def test_per_item_deadline_kills_the_slot_and_charges_the_item(self):
        clock = VirtualClock()
        backend = _HangingBackend(clock)
        terminal = []

        def terminal_result(item, kind, retries):
            terminal.append((item.index, kind, retries))
            return ("terminal", item.index)

        scheduler = ElasticScheduler(
            backend, max_retries=1, job_timeout_s=3.0, clock=clock,
            terminal_result=terminal_result)
        results = scheduler.run([WorkUnit([_Item(0)])])
        assert results == {0: ("terminal", 0)}
        assert terminal == [(0, "timeout", 1)]
        assert backend.kills == 2  # first attempt + one retry
        assert clock.now() >= 6.0  # two full per-item deadlines


# ---------------------------------------------------------------------------
# containment against the real process backend


class TestProcessContainment:
    def test_worker_death_leaves_queue_mates_unharmed_across_steals(self):
        # enough chunks that idle workers steal while the crasher kills
        # its slot mid-corpus; every innocent must come home clean
        specs = [spec(i, callable_ref(traffic_light_system),
                      kind=("wrong_target" if i % 2 else "remove_transition"))
                 for i in range(5)]
        specs[2] = spec(2, "test_sched:exiting_system")
        runner = FleetRunner(workers=2, chunk_size=2, max_retries=1)
        results = runner.run(specs)
        for i in (0, 1, 3, 4):
            assert not results[i].failed, results[i]
            assert results[i].retries == 0
        assert results[2].failed
        assert results[2].error["type"] == "WorkerCrashed"
        assert results[2].retries == 1

    def test_stranded_jobs_recover_concurrently_not_in_sum_of_backoffs(self):
        # two crashers, 1.0s backoff, one retry each: the old serial
        # stranded pass slept >= 2.0s; the event loop overlaps the
        # backoff deadlines and finishes in roughly one
        specs = [spec(0, "test_sched:exiting_system"),
                 spec(1, "test_sched:exiting_system", kind="remove_transition")]
        runner = FleetRunner(workers=2, chunk_size=1, max_retries=1,
                             retry_backoff_s=1.0)
        start = time.monotonic()
        results = runner.run(specs)
        elapsed = time.monotonic() - start
        assert all(r.failed and r.error["type"] == "WorkerCrashed"
                   and r.retries == 1 for r in results)
        assert elapsed < 1.9, f"stranded recovery serialized: {elapsed:.2f}s"

    def test_per_unit_deadline_kills_only_the_wedged_job(self):
        specs = [spec(0, callable_ref(traffic_light_system)),
                 spec(1, "test_sched:hanging_system"),
                 spec(2, callable_ref(traffic_light_system),
                      kind="remove_transition")]
        runner = FleetRunner(workers=2, chunk_size=1, max_retries=0,
                             job_timeout_s=1.5)
        results = runner.run(specs)
        assert not results[0].failed and results[0].retries == 0
        assert not results[2].failed and results[2].retries == 0
        assert results[1].failed
        assert results[1].error["type"] == "JobTimeout"
        assert "1.5s" in results[1].error["message"]
        assert results[1].retries == 0


# ---------------------------------------------------------------------------
# the steal-aware worker entry


class TestRunUnitStealable:
    def _specs(self, n):
        return [spec(i, callable_ref(traffic_light_system)) for i in range(n)]

    def test_completes_and_streams_in_order(self):
        seen = []
        done = run_unit_stealable(
            [_Item(0), _Item(1)], lambda off, r: seen.append((off, r)),
            execute=lambda item: item.index * 10)
        assert done == 2
        assert seen == [(0, 0), (1, 10)]

    def test_yields_between_items_never_before_the_first(self):
        calls = []
        done = run_unit_stealable(
            [_Item(0), _Item(1), _Item(2)],
            lambda off, r: calls.append(off),
            should_yield=lambda: True,
            execute=lambda item: item.index)
        assert done == 1  # first item always executes, then the yield
        assert calls == [0]
