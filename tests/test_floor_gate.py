"""The benchmark floor gate reports bad scoreboards; it never crashes.

Regression for the ``check_floors.py`` bug where a metric resolving to
``None`` (or any non-numeric JSON value — a perf script that recorded
``null`` on an exception path, a string, a nested object) blew up the
gate with an uncaught ``TypeError`` at ``value < spec["floor"]``
instead of listing a clean violation like every other failure mode.
"""

import importlib.util
import json
import os
import pathlib

import pytest

_CHECK_FLOORS = (pathlib.Path(__file__).resolve().parent.parent
                 / "benchmarks" / "check_floors.py")
_spec = importlib.util.spec_from_file_location("check_floors", _CHECK_FLOORS)
check_floors = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_floors)


def gate_dir(tmp_path, floors, scoreboards):
    """Lay out a FLOORS.json + BENCH_*.json directory for the gate."""
    (tmp_path / "FLOORS.json").write_text(json.dumps(floors))
    for stem, data in scoreboards.items():
        (tmp_path / f"{stem}.json").write_text(json.dumps(data))
    return str(tmp_path)


class TestNonNumericMetrics:
    @pytest.mark.parametrize("bad", [None, "3.3M", {"nested": 1}, [1, 2]])
    def test_non_numeric_metric_is_a_clean_violation(self, tmp_path, bad):
        here = gate_dir(
            tmp_path,
            {"BENCH_x": {"metric": "rate", "floor": 100}},
            {"BENCH_x": {"rate": bad}},
        )
        ok_lines, failures = check_floors.check(here, quick=False)
        assert failures == [f"BENCH_x: metric rate is non-numeric ({bad!r})"]
        assert ok_lines == []

    def test_non_numeric_does_not_stop_other_entries(self, tmp_path):
        """One poisoned scoreboard must not hide a real regression."""
        here = gate_dir(
            tmp_path,
            {"BENCH_bad": {"metric": "rate", "floor": 100},
             "BENCH_slow": {"metric": "rate", "floor": 100}},
            {"BENCH_bad": {"rate": None}, "BENCH_slow": {"rate": 7}},
        )
        _, failures = check_floors.check(here, quick=False)
        assert len(failures) == 2
        assert any("non-numeric" in f for f in failures)
        assert any("below floor" in f for f in failures)

    def test_ceiling_spec_with_non_numeric_metric(self, tmp_path):
        here = gate_dir(
            tmp_path,
            {"BENCH_x": {"metric": "cost", "ceiling": 10}},
            {"BENCH_x": {"cost": "cheap"}},
        )
        _, failures = check_floors.check(here, quick=False)
        assert failures == ["BENCH_x: metric cost is non-numeric ('cheap')"]


class TestGateStillGates:
    def test_numeric_pass_and_fail(self, tmp_path):
        here = gate_dir(
            tmp_path,
            {"BENCH_ok": {"metric": "rate", "floor": 100},
             "BENCH_low": {"metric": "rate", "floor": 100}},
            {"BENCH_ok": {"rate": 150}, "BENCH_low": {"rate": 50}},
        )
        ok_lines, failures = check_floors.check(here, quick=False)
        assert ok_lines == ["ok: BENCH_ok rate = 150 (floor 100)"]
        assert failures == ["BENCH_low: rate = 50 below floor 100"]

    def test_dotted_path_and_missing_metric(self, tmp_path):
        here = gate_dir(
            tmp_path,
            {"BENCH_x": {"metric": "watches.64.rate", "floor": 1},
             "BENCH_y": {"metric": "absent.path", "floor": 1}},
            {"BENCH_x": {"watches": {"64": {"rate": 5}}},
             "BENCH_y": {"rate": 5}},
        )
        ok_lines, failures = check_floors.check(here, quick=False)
        assert ok_lines == ["ok: BENCH_x watches.64.rate = 5 (floor 1)"]
        assert failures == [
            "BENCH_y: metric 'absent.path' not found in BENCH_y.json"]

    def test_missing_scoreboard_still_reported(self, tmp_path):
        here = gate_dir(tmp_path,
                        {"BENCH_x": {"metric": "rate", "floor": 1}}, {})
        _, failures = check_floors.check(here, quick=False)
        assert failures == ["BENCH_x: scoreboard BENCH_x.json missing"]

    def test_boolean_parity_flags_stay_numeric(self, tmp_path):
        """parity_identical-style flags recorded as JSON true compare
        fine (bool is an int); the non-numeric guard must not reject
        them."""
        here = gate_dir(
            tmp_path,
            {"BENCH_parity": {"metric": "identical", "floor": 1}},
            {"BENCH_parity": {"identical": True}},
        )
        ok_lines, failures = check_floors.check(here, quick=False)
        assert failures == []
        assert len(ok_lines) == 1

    def test_repo_floors_file_is_well_formed(self):
        """The committed FLOORS.json itself: every spec names a metric
        and at least one bound."""
        with open(os.path.join(os.path.dirname(_CHECK_FLOORS), "FLOORS.json"),
                  encoding="utf-8") as handle:
            floors = json.load(handle)
        for name, spec in floors.items():
            assert "metric" in spec, name
            assert "floor" in spec or "ceiling" in spec, name
