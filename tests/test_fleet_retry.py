"""Tests for bounded fleet retry, per-job timeouts and the comm corpus.

The crash-containment contract after this PR: a job whose worker dies is
retried in isolation up to ``max_retries`` times with exponential
backoff; a job that wedges past ``job_timeout_s`` is killed; both come
back as structured failures carrying the burned retry count — campaigns
over faulty workers complete with partial results, never hang.
"""

import os
import time

import pytest

from repro.codegen import InstrumentationPlan
from repro.comdes.examples import traffic_light_system
from repro.errors import FleetError
from repro.experiments.requirements import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import (
    FleetRunner,
    JobSpec,
    SerialRunner,
    callable_ref,
    enumerate_campaign_jobs,
)
from repro.fleet.jobs import JobResult
from repro.util.timeunits import sec


def exiting_system():
    """A system factory that kills its worker process outright."""
    os._exit(3)


def hanging_system():
    """A system factory that wedges its worker forever."""
    time.sleep(600)


def spec(index, system_ref, kind="wrong_target"):
    return JobSpec(index, "design", kind, 1, sec(1), system_ref,
                   callable_ref(traffic_light_monitor_suite),
                   callable_ref(traffic_light_code_watches),
                   InstrumentationPlan.full())


class TestRunnerConfig:
    def test_validation(self):
        with pytest.raises(FleetError):
            FleetRunner(max_retries=-1)
        with pytest.raises(FleetError):
            FleetRunner(retry_backoff_s=-0.1)
        with pytest.raises(FleetError):
            FleetRunner(job_timeout_s=0)

    def test_repr_names_the_retry_budget(self):
        runner = FleetRunner(workers=2, max_retries=3, job_timeout_s=5.0)
        assert "retries=3" in repr(runner)
        assert "timeout=5.0s" in repr(runner)

    def test_job_result_carries_retry_count(self):
        result = JobResult(0, "control")
        assert result.retries == 0
        assert JobResult(1, "x", retries=2).retries == 2


class TestBoundedCrashRetry:
    def test_crasher_exhausts_its_budget_with_structured_failure(self):
        specs = [spec(0, callable_ref(traffic_light_system)),
                 spec(1, "test_fleet_retry:exiting_system"),
                 spec(2, callable_ref(traffic_light_system),
                      kind="remove_transition")]
        runner = FleetRunner(workers=2, chunk_size=3, max_retries=2)
        results = runner.run(specs)
        assert [r.index for r in results] == [0, 1, 2]
        assert not results[0].failed and not results[2].failed
        crashed = results[1]
        assert crashed.failed
        assert crashed.error["type"] == "WorkerCrashed"
        assert crashed.error["retries"] == 2
        assert crashed.retries == 2

    def test_zero_retries_reports_the_first_crash(self):
        runner = FleetRunner(workers=1, chunk_size=1, max_retries=0)
        results = runner.run([spec(0, "test_fleet_retry:exiting_system")])
        assert results[0].failed
        assert results[0].error["type"] == "WorkerCrashed"
        assert results[0].retries == 0

    def test_innocent_chunk_mates_are_unaffected(self):
        # one chunk, one crasher: workers stream one result per spec,
        # so the innocent's result is already home when the crasher
        # takes the worker down — it never reruns, never burns a retry
        specs = [spec(0, callable_ref(traffic_light_system)),
                 spec(1, "test_fleet_retry:exiting_system")]
        runner = FleetRunner(workers=1, chunk_size=2, max_retries=1)
        results = runner.run(specs)
        assert not results[0].failed
        assert results[0].retries == 0
        assert results[1].failed
        assert results[1].error["type"] == "WorkerCrashed"
        assert results[1].retries == 1

    def test_backoff_sleeps_between_attempts(self):
        runner = FleetRunner(workers=1, chunk_size=1, max_retries=2,
                             retry_backoff_s=0.2)
        start = time.monotonic()
        results = runner.run([spec(0, "test_fleet_retry:exiting_system")])
        elapsed = time.monotonic() - start
        assert results[0].failed
        assert elapsed >= 0.2 + 0.4  # 0.2 * 2**0, then 0.2 * 2**1


class TestJobTimeout:
    def test_hanging_job_is_killed_and_structured(self):
        runner = FleetRunner(workers=1, chunk_size=1, max_retries=1,
                             job_timeout_s=3.0)
        results = runner.run([spec(0, "test_fleet_retry:hanging_system")])
        assert results[0].failed
        assert results[0].error["type"] == "JobTimeout"
        assert "3.0s" in results[0].error["message"]
        assert results[0].retries == 1

    def test_healthy_jobs_finish_under_a_timeout(self):
        runner = FleetRunner(workers=2, job_timeout_s=120.0)
        results = runner.run([spec(0, callable_ref(traffic_light_system))])
        assert not results[0].failed
        assert results[0].retries == 0


class TestCommCorpus:
    CAMPAIGN_KW = dict(design_kinds=(), impl_kinds=(),
                       comm_kinds=("frame_loss", "frame_reorder"),
                       seeds=(1, 2), duration_us=sec(1))

    def test_enumeration_places_comm_after_implementation(self):
        specs = enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, plan=InstrumentationPlan.full(),
            design_kinds=("wrong_target",), impl_kinds=("init_corrupt",),
            comm_kinds=("frame_loss",), seeds=(1,), duration_us=sec(1))
        assert [s.job_id for s in specs] == [
            "control", "design/wrong_target/1",
            "implementation/init_corrupt/1", "comm/frame_loss/1"]

    def test_comm_campaign_runs_and_summarizes(self):
        result = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches(), **self.CAMPAIGN_KW)
        assert len(result.outcomes) == 4
        assert all(o.fault.category == "comm" for o in result.outcomes)
        assert all(o.classified_as == "" for o in result.outcomes)
        rows = result.summary_rows()
        assert [r["category"] for r in rows] == ["comm"]
        assert rows[0]["faults"] == 4

    def test_comm_campaign_is_deterministic(self):
        def fingerprint():
            result = run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches(), **self.CAMPAIGN_KW)
            return [(o.fault.fault_id, o.model_detected, o.model_latency_us,
                     o.model_how, o.code_detected) for o in result.outcomes]

        assert fingerprint() == fingerprint()

    def test_serial_runner_matches_inline(self):
        inline = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches(), **self.CAMPAIGN_KW)
        through_fleet = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=SerialRunner(),
            **self.CAMPAIGN_KW)
        key = lambda r: [(o.fault.fault_id, o.model_detected,
                          o.model_latency_us, o.code_detected)
                         for o in r.outcomes]
        assert key(inline) == key(through_fleet)

    def test_unknown_comm_kind_is_a_structured_error(self):
        from repro.faults.comm import comm_chaos_config
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="unknown comm fault kind"):
            comm_chaos_config("cable_gremlin", 1)
