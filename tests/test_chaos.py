"""Tests for transport fault injection, retry and graceful degradation.

Three layers under test:

* :mod:`repro.comm.chaos` — seeded, deterministic wire faults over any
  DebugLink (memory plane and frame plane);
* :mod:`repro.comm.retry` — bounded retry/timeout/backoff with
  idempotency-aware write handling;
* :class:`repro.engine.session.DegradationPolicy` — budget-aware
  degradation of passive observation plans instead of hard failure.

The headline invariant: at a fixed chaos seed, two runs produce
byte-identical fault schedules, transcripts, transport accounting and
degradation event logs.
"""

import pytest

from repro.comdes.examples import cruise_control_system, traffic_light_system
from repro.comm.chaos import ChaosConfig, ChaosLink
from repro.comm.frames import FrameDecoder, encode_frame
from repro.comm.link import DebugLink, DirectLink, SerialLink
from repro.comm.retry import RetryPolicy, RetryingLink
from repro.comm.rs232 import Rs232Link
from repro.engine.session import (
    DebugSession,
    DegradationPolicy,
    TransportBudget,
)
from repro.errors import (
    BudgetExceededError,
    CommError,
    DebuggerError,
    LinkDownError,
    TransientLinkError,
)
from repro.target.board import Board
from repro.target.memory import RAM_BASE
from repro.util.timeunits import ms


def direct_link(values=()):
    board = Board()
    for offset, value in enumerate(values):
        board.memory.poke(RAM_BASE + offset, value)
    return DirectLink(board), board


class FlakyLink(DebugLink):
    """Scripted inner link: fails the first *fail_first* ops, then works.

    ``lost_ack`` makes write failures execute before raising (the write
    lands; only the completion ack is lost). ``op_cost_us`` is the
    modeled cost of every successful operation.
    """

    kind = "flaky"

    def __init__(self, fail_first=0, lost_ack=False, op_cost_us=10):
        super().__init__()
        self.board = Board()
        self.fail_first = fail_first
        self.lost_ack = lost_ack
        self.op_cost_us = op_cost_us
        self.attempts = 0
        self.writes_executed = 0

    def _gate(self, op):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            self._account(0)
            raise TransientLinkError(op)

    def read_block(self, base, count):
        self._gate("read_block")
        values = [self.board.memory.peek(base + i) for i in range(count)]
        return values, self._account(self.op_cost_us, words_read=count)

    def read_scatter(self, addrs):
        self._gate("read_scatter")
        values = [self.board.memory.peek(a) for a in addrs]
        return values, self._account(self.op_cost_us, words_read=len(addrs))

    def write_block(self, base, values):
        self.attempts += 1
        failing = self.attempts <= self.fail_first
        if failing and not self.lost_ack:
            self._account(0)
            raise TransientLinkError("write_block")
        for offset, value in enumerate(values):
            self.board.memory.poke(base + offset, value)
        self.writes_executed += 1
        cost = self._account(self.op_cost_us, words_written=len(values))
        if failing:
            raise TransientLinkError("write_block", "ack lost")
        return cost


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(CommError):
            ChaosConfig(frame_loss=1.5)
        with pytest.raises(CommError):
            ChaosConfig(transient_error=-0.1)
        with pytest.raises(CommError):
            ChaosConfig(drop_ops=0)
        with pytest.raises(CommError):
            ChaosConfig(reorder_delay_us=-1)

    def test_enabled_gate(self):
        assert not ChaosConfig().enabled
        assert not ChaosConfig(seed=99).enabled
        assert ChaosConfig(frame_loss=0.01).enabled
        assert ChaosConfig(transient_error=1.0).enabled

    def test_with_seed_copies_everything_else(self):
        config = ChaosConfig(seed=1, frame_loss=0.25, drop_ops=7,
                             record_schedule=True)
        clone = config.with_seed(42)
        assert clone.seed == 42
        assert clone.frame_loss == 0.25
        assert clone.drop_ops == 7
        assert clone.record_schedule
        assert config.seed == 1  # original untouched


class TestChaosMemoryPlane:
    def test_disabled_is_a_transparent_passthrough(self):
        inner, _ = direct_link(values=(11, 22, 33))
        chaos = ChaosLink(inner, ChaosConfig(seed=5))
        values, cost = chaos.read_block(RAM_BASE, 3)
        assert values == [11, 22, 33]
        assert cost == 0
        assert chaos.transactions == 1 and chaos.words_read == 3
        assert chaos.stats()["transient_errors"] == 0
        assert chaos.schedule == []

    def test_wrapper_delegates_unknown_attributes(self):
        inner, board = direct_link()
        chaos = ChaosLink(inner)
        assert chaos.board is board
        assert chaos.kind == "chaos[direct]"
        chaos.halt_target()
        assert board.stalled
        chaos.resume_target()
        assert not board.stalled

    def test_certain_transient_error_raises_and_books_a_round_trip(self):
        inner, _ = direct_link()
        chaos = ChaosLink(inner, ChaosConfig(seed=1, transient_error=1.0))
        with pytest.raises(TransientLinkError):
            chaos.read_block(RAM_BASE, 1)
        assert chaos.transactions == 1  # the failed trip is booked
        assert chaos.words_read == 0
        assert inner.transactions == 0  # it never reached the wire
        assert chaos.stats()["transient_errors"] == 1

    def test_read_corruption_flips_exactly_one_bit(self):
        inner, _ = direct_link(values=(0, 0, 0, 0))
        chaos = ChaosLink(inner, ChaosConfig(seed=3, read_corrupt=1.0))
        values, _ = chaos.read_scatter([RAM_BASE + i for i in range(4)])
        flipped = [v for v in values if v != 0]
        assert len(flipped) == 1
        assert bin(flipped[0]).count("1") == 1
        assert chaos.stats()["reads_corrupted"] == 1
        # the target itself was never touched
        assert inner.read_scatter([RAM_BASE + i for i in range(4)])[0] == [0] * 4

    def test_latency_spike_surcharges_the_op(self):
        inner, _ = direct_link(values=(7,))
        chaos = ChaosLink(inner, ChaosConfig(seed=2, latency_spike=1.0,
                                             latency_spike_us=1234))
        value, cost = chaos.read_word(RAM_BASE)
        assert value == 7
        assert cost == 1234  # DirectLink is free; the spike is the cost
        assert chaos.cost_us_total == 1234
        assert chaos.stats()["latency_spikes"] == 1

    def test_link_drop_opens_an_outage_window(self):
        inner, _ = direct_link()
        chaos = ChaosLink(inner, ChaosConfig(seed=1, link_drop=1.0,
                                             drop_ops=2))
        with pytest.raises(TransientLinkError):  # op 0: the drop itself
            chaos.read_word(RAM_BASE)
        assert chaos.down
        for _ in range(2):  # ops 1..2: inside the outage window
            with pytest.raises(TransientLinkError):
                chaos.read_word(RAM_BASE)
        assert chaos.stats()["link_drops"] >= 1

    def test_manual_drop_and_reattach(self):
        inner, _ = direct_link(values=(9,))
        chaos = ChaosLink(inner, ChaosConfig())  # even disabled configs
        assert not chaos.down
        chaos.drop()
        assert chaos.down
        with pytest.raises(TransientLinkError):
            chaos.read_word(RAM_BASE)
        with pytest.raises(TransientLinkError):
            chaos.write_word(RAM_BASE, 1)
        chaos.reattach()
        assert not chaos.down
        assert chaos.read_word(RAM_BASE)[0] == 9
        assert chaos.stats()["link_drops"] == 1

    def test_write_transients_split_rejected_and_lost_ack(self):
        # Across seeds, a certain write transient must show both faces:
        # rejected (memory untouched) and lost ack (the write landed).
        landed = rejected = 0
        for seed in range(32):
            inner, board = direct_link(values=(0,))
            chaos = ChaosLink(inner, ChaosConfig(seed=seed,
                                                 transient_error=1.0))
            with pytest.raises(TransientLinkError):
                chaos.write_word(RAM_BASE, 77)
            if board.memory.peek(RAM_BASE) == 77:
                landed += 1
            else:
                rejected += 1
        assert landed > 0 and rejected > 0

    def test_schedule_is_deterministic_per_seed(self):
        def schedule(seed):
            inner, _ = direct_link(values=tuple(range(8)))
            chaos = ChaosLink(inner, ChaosConfig(
                seed=seed, transient_error=0.3, read_corrupt=0.2,
                latency_spike=0.2, record_schedule=True))
            for _ in range(40):
                try:
                    chaos.read_block(RAM_BASE, 8)
                except TransientLinkError:
                    pass
            return list(chaos.schedule), chaos.stats()

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


def one_frame_link():
    return SerialLink(Rs232Link(), host_latency_us=50)


class TestChaosFramePlane:
    FRAME = encode_frame(1, 2, 3)

    def chaos_transmit(self, **rates):
        link = ChaosLink(one_frame_link(), ChaosConfig(seed=4, **rates))
        wire, t_done, t_arrive = link.transmit_frame(0, self.FRAME)
        return link, wire, t_done, t_arrive

    def test_loss_delivers_nothing(self):
        link, wire, _, _ = self.chaos_transmit(frame_loss=1.0)
        assert wire == b""
        assert FrameDecoder().feed(wire) == []
        assert link.stats()["frames_lost"] == 1
        assert link.frames_carried == 1  # the line time was still spent

    def test_corruption_fails_the_checksum(self):
        link, wire, _, _ = self.chaos_transmit(frame_corrupt=1.0)
        assert wire != self.FRAME and len(wire) == len(self.FRAME)
        decoder = FrameDecoder()
        assert decoder.feed(wire) == []
        assert decoder.checksum_errors + decoder.framing_errors > 0
        assert link.stats()["frames_corrupted"] == 1

    def test_duplication_decodes_twice(self):
        link, wire, _, _ = self.chaos_transmit(frame_duplicate=1.0)
        assert wire == self.FRAME + self.FRAME
        assert FrameDecoder().feed(wire) == [(1, 2, 3), (1, 2, 3)]
        assert link.stats()["frames_duplicated"] == 1

    def test_reordering_delays_arrival(self):
        clean = one_frame_link().transmit_frame(0, self.FRAME)
        link, wire, t_done, t_arrive = self.chaos_transmit(
            frame_reorder=1.0, reorder_delay_us=4000)
        assert wire == self.FRAME
        assert t_done == clean[1]
        assert t_arrive == clean[2] + 4000
        assert link.stats()["frames_reordered"] == 1

    def test_disabled_transmit_is_exact(self):
        clean = one_frame_link().transmit_frame(0, self.FRAME)
        link = ChaosLink(one_frame_link(), ChaosConfig(seed=9))
        assert link.transmit_frame(0, self.FRAME) == clean


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(CommError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CommError):
            RetryPolicy(op_timeout_us=0)
        with pytest.raises(CommError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(CommError):
            RetryPolicy(jitter=2.0)

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(backoff_us=100, backoff_multiplier=2.0,
                             jitter=0.5, seed=1)
        waits = [policy.backoff_for(0, attempt) for attempt in (2, 3, 4)]
        assert waits == [policy.backoff_for(0, a) for a in (2, 3, 4)]
        assert 100 <= waits[0] <= 150
        assert 200 <= waits[1] <= 300
        assert 400 <= waits[2] <= 600

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_us=100, backoff_multiplier=3.0,
                             jitter=0.0)
        assert policy.backoff_for(5, 2) == 100
        assert policy.backoff_for(5, 3) == 300


class TestRetryingLink:
    def test_read_retries_through_transients(self):
        inner = FlakyLink(fail_first=2)
        link = RetryingLink(inner, RetryPolicy(max_attempts=3,
                                               backoff_us=100, jitter=0.0))
        values, cost = link.read_block(RAM_BASE, 2)
        assert values == [0, 0]
        assert link.retries == 2
        assert link.giveups == 0
        # total cost: two backoffs (100 + 200) plus the successful trip
        assert cost == 100 + 200 + inner.op_cost_us
        assert link.backoff_us_total == 300
        assert link.transactions == 3  # two failed trips + the success

    def test_exhaustion_raises_structured_link_down(self):
        link = RetryingLink(FlakyLink(fail_first=99),
                            RetryPolicy(max_attempts=3, backoff_us=0))
        with pytest.raises(LinkDownError) as err:
            link.read_scatter([RAM_BASE])
        assert err.value.op == "read_scatter"
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, TransientLinkError)
        assert link.giveups == 1
        assert link.retries == 2

    def test_timed_out_read_is_discarded_and_retried(self):
        inner = FlakyLink(op_cost_us=5000)
        link = RetryingLink(inner, RetryPolicy(max_attempts=2,
                                               op_timeout_us=1000,
                                               backoff_us=0))
        with pytest.raises(LinkDownError):  # every attempt times out
            link.read_block(RAM_BASE, 1)
        assert link.timeouts == 2
        assert inner.attempts == 2

    def test_timed_out_write_is_accepted_and_counted(self):
        inner = FlakyLink(op_cost_us=5000)
        link = RetryingLink(inner, RetryPolicy(max_attempts=3,
                                               op_timeout_us=1000))
        link.write_block(RAM_BASE, [42])
        assert link.timeouts == 1
        assert inner.writes_executed == 1  # never re-issued
        assert inner.board.memory.peek(RAM_BASE) == 42

    def test_lost_ack_write_verifies_instead_of_reissuing(self):
        inner = FlakyLink(fail_first=1, lost_ack=True)
        link = RetryingLink(inner, RetryPolicy(max_attempts=3,
                                               backoff_us=0))
        link.write_block(RAM_BASE, [7, 8])
        # attempt 1 landed (ack lost); the retry's verify-read matched,
        # so the write was never issued twice
        assert inner.writes_executed == 1
        assert link.retries == 1
        assert [inner.board.memory.peek(RAM_BASE + i) for i in (0, 1)] == [7, 8]

    def test_rejected_write_reissues(self):
        inner = FlakyLink(fail_first=1, lost_ack=False)
        link = RetryingLink(inner, RetryPolicy(max_attempts=3,
                                               backoff_us=0))
        link.write_block(RAM_BASE, [9])
        assert inner.writes_executed == 1  # first try never executed
        assert inner.board.memory.peek(RAM_BASE) == 9

    def test_verify_disabled_reissues_blindly(self):
        inner = FlakyLink(fail_first=1, lost_ack=True)
        link = RetryingLink(inner, RetryPolicy(max_attempts=3, backoff_us=0,
                                               verify_writes=False))
        link.write_block(RAM_BASE, [5])
        assert inner.writes_executed == 2  # landed, then re-issued anyway
        assert inner.board.memory.peek(RAM_BASE) == 5

    def test_stacks_over_chaos(self):
        inner, _ = direct_link(values=(1, 2, 3, 4))
        chaos = ChaosLink(inner, ChaosConfig(seed=11, transient_error=0.4))
        link = RetryingLink(chaos, RetryPolicy(max_attempts=8, backoff_us=0))
        addrs = [RAM_BASE + i for i in range(4)]
        for _ in range(25):
            assert link.read_scatter(addrs)[0] == [1, 2, 3, 4]
        assert link.retries > 0
        assert link.kind == "retry[chaos[direct]]"

    def test_transmit_frame_is_not_retried(self):
        frame = encode_frame(1, 2, 3)
        chaos = ChaosLink(one_frame_link(),
                          ChaosConfig(seed=4, frame_loss=1.0))
        link = RetryingLink(chaos, RetryPolicy(max_attempts=5))
        wire, _, _ = link.transmit_frame(0, frame)
        assert wire == b""  # the loss stands; fire-and-forget
        assert link.retries == 0
        assert link.frames_carried == 1


def passive_session(seed=7, **kw):
    defaults = dict(
        chaos=ChaosConfig(seed=seed, transient_error=0.15,
                          latency_spike=0.05, read_corrupt=0.02,
                          latency_spike_us=200),
        retry=RetryPolicy(max_attempts=5, backoff_us=50, seed=seed),
    )
    defaults.update(kw)
    return DebugSession(traffic_light_system(), channel_kind="passive",
                        poll_period_us=500, **defaults).setup()


class TestChaosSessions:
    def test_passive_session_completes_under_chaos(self):
        session = passive_session()
        session.run(ms(40))
        stats = session.transport_stats()
        assert stats["retries"] > 0  # the wire really was faulty
        assert stats["channels"]["passive"]["retries"] == stats["retries"]
        assert session.engine.commands_processed > 0

    def test_same_seed_runs_are_identical(self):
        def transcript(seed):
            session = passive_session(seed=seed)
            commands = []
            session.channel.subscribe(
                lambda c: commands.append(
                    (c.kind, c.path, c.value, c.t_target, c.t_host)))
            session.run(ms(40))
            return commands, session.transport_stats()

        first = transcript(3)
        assert first == transcript(3)
        assert first != transcript(4)

    def test_each_node_gets_its_own_schedule(self):
        session = DebugSession(
            cruise_control_system(), channel_kind="passive",
            poll_period_us=500,
            chaos=ChaosConfig(seed=6, transient_error=0.2),
            retry=RetryPolicy(max_attempts=6, backoff_us=0),
        ).setup()
        session.run(ms(30))
        schedules = [link.inner.stats() for link in session.links.values()]
        assert len(schedules) == 2
        assert schedules[0] != schedules[1]

    def test_active_session_survives_frame_loss(self):
        def run(seed):
            session = DebugSession(
                traffic_light_system(), channel_kind="active",
                chaos=ChaosConfig(seed=seed, frame_loss=0.4),
            ).setup()
            commands = []
            session.channel.subscribe(
                lambda c: commands.append((c.kind, c.path, c.value,
                                           c.t_target, c.t_host)))
            session.run(ms(600))
            lost = sum(link.stats()["frames_lost"]
                       for link in session.links.values())
            return commands, lost

        commands, lost = run(2)
        assert lost > 0
        assert commands  # a lossy wire degrades, never silences
        assert (commands, lost) == run(2)

    def test_exhausted_retries_surface_as_failed_polls(self):
        session = passive_session(
            chaos=ChaosConfig(seed=1, transient_error=1.0),
            retry=RetryPolicy(max_attempts=2, backoff_us=0))
        session.run(ms(10))
        channel = session._passive_channels[0]
        assert channel.polls_failed == channel.polls > 0
        assert session.transport_stats()["retries"] > 0


class TestDegradationPolicy:
    def test_validation(self):
        with pytest.raises(DebuggerError):
            DegradationPolicy(max_slowdown=0)
        with pytest.raises(DebuggerError):
            DegradationPolicy(min_watches=0)

    def test_budget_violation_degrades_instead_of_raising(self):
        session = passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=15),
            degradation=DegradationPolicy())
        session.run(ms(20))  # would need ~41 transactions undegraded
        assert not session.budget_failed
        assert session.degradation_events
        assert session.degradation_events[0]["action"] == "slow_poll"
        assert "transactions" in session.degradation_events[0]["reason"]
        assert session.transport_stats()["transactions"] <= 15
        assert (session.transport_stats()["degradations"]
                == len(session.degradation_events))

    def test_raise_stays_the_explicit_opt_in(self):
        # without a policy the budget raise is unchanged
        session = passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=10))
        with pytest.raises(BudgetExceededError):
            session.run(ms(20))
        assert session.budget_failed

    def test_degradation_escalates_through_the_knobs(self):
        session = passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=3),
            degradation=DegradationPolicy(max_slowdown=2, max_stride=2))
        session.run(ms(20))
        actions = [e["action"] for e in session.degradation_events]
        assert actions[0] == "slow_poll"   # cheapest first
        assert "split_plan" in actions     # then split
        assert "shed_watch" in actions     # then shed (3 watches -> 1)
        channel = session._passive_channels[0]
        assert len(channel.watches) >= 1
        assert channel.shed  # dropped symbols recorded

    def test_exhausted_records_and_runs_by_default(self):
        session = passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=1),
            degradation=DegradationPolicy(max_slowdown=1, max_stride=1))
        session.run(ms(20))  # un-fittable, but the run still happens
        assert not session.budget_failed
        assert any(e["action"] == "exhausted"
                   for e in session.degradation_events)
        assert session.sim.now >= ms(20)

    def test_raise_on_exhausted_restores_the_hard_failure(self):
        session = passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=1),
            degradation=DegradationPolicy(max_slowdown=1, max_stride=1,
                                          raise_on_exhausted=True))
        with pytest.raises(BudgetExceededError):
            session.run(ms(20))
        assert session.budget_failed

    def test_degradation_events_are_seed_stable(self):
        def events(seed):
            session = passive_session(
                seed=seed,
                budget=TransportBudget(max_transactions=20),
                degradation=DegradationPolicy())
            session.run(ms(20))
            return [(e["action"], e["detail"], e["t_us"])
                    for e in session.degradation_events]

        assert events(5) == events(5)


class TestPassiveChannelDegradationHooks:
    def make_channel(self):
        session = passive_session(chaos=None, retry=None)
        return session, session._passive_channels[0]

    def test_stride_splits_but_plan_stays_full(self):
        session, channel = self.make_channel()
        full = list(channel.plan.addrs)
        channel.set_stride(2)
        assert channel.stride == 2
        assert list(channel.plan.addrs) == full  # the full plan survives
        assert len(channel._groups) == 2
        session.run(ms(20))
        # strided polls read fewer words per tick than the full plan
        assert session.transport_stats()["words_read"] < \
            (channel.polls + 1) * len(full)

    def test_strided_polls_still_see_every_watch(self):
        session, channel = self.make_channel()
        channel.set_stride(3)
        commands = []
        session.channel.subscribe(lambda c: commands.append(c.path))
        session.run(ms(400))
        assert any(p.startswith("state:") for p in commands)
        assert any(p.startswith("signal:") for p in commands)

    def test_shed_never_drops_the_last_watch(self):
        _, channel = self.make_channel()
        dropped = channel.shed_watches(10)
        assert len(channel.watches) == 1
        assert len(dropped) == 2
        assert channel.shed == dropped
        assert channel.shed_watches(1) == []

    def test_slowed_poll_reschedules_at_the_new_period(self):
        session, channel = self.make_channel()
        session.run(ms(10))
        before = channel.polls
        channel.set_poll_period(2000)
        session.run(ms(10) + ms(8))
        assert channel.polls - before == ms(8) // 2000
