"""Property: telemetry never perturbs the system under observation.

The zero-interference invariant of ``repro.obs``: running any workload
with the registry/tracer enabled must leave every *observable* output
bit-identical to the disabled run — CPU machine state, emit logs,
fault pcs, session transcripts and campaign fingerprints. Telemetry is
read-only bookkeeping on the side; the moment it changes an outcome it
has become part of the experiment.

Randomized programs reuse the codegen-shaped snippet generator from
``test_superinstructions`` (the same corpus the fusion and batch
tiers are proven against).
"""

from hypothesis import given, settings, strategies as st

from test_superinstructions import (
    RAM_WORDS,
    RUN_LIMIT,
    STACK_DEPTH,
    assemble_program,
    build,
    snap,
    snippets,
)

from repro.comdes.examples import traffic_light_system
from repro.comm.chaos import ChaosConfig
from repro.comm.retry import RetryPolicy
from repro.engine.session import DebugSession
from repro.errors import TargetFault
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import FleetRunner, SerialRunner
from repro.obs import (
    OBS,
    HeartbeatConfig,
    HeartbeatEmitter,
    LiveAggregator,
    disable,
    observed,
)
from repro.obs.export import export_campaign
from repro.tracedb import campaign_store_root
from repro.util.timeunits import ms, sec

cell_value = st.integers(-(2 ** 31), 2 ** 31 - 1)


def run_program(snips, fills):
    """One serial run: final machine state + any fault, per lane."""
    code = assemble_program(snips)
    outcomes = []
    for cells in fills:
        cpu = build(code, fuse=True)
        cpu.memory.cells[:len(cells)] = list(cells)
        try:
            cpu.run(max_instructions=RUN_LIMIT)
            fault = None
        except TargetFault as exc:
            fault = (str(exc), exc.pc)
        outcomes.append((snap(cpu), fault))
    return outcomes


def session_transcript(**kw):
    session = DebugSession(traffic_light_system(), channel_kind="passive",
                           poll_period_us=500, **kw).setup()
    session.run(ms(20))
    return (session.engine.trace.to_dicts(), session.transport_stats(),
            session.degradation_events)


class TestCpuIdentity:
    @settings(max_examples=30, deadline=None)
    @given(snips=snippets, data=st.data())
    def test_observed_run_is_bit_identical(self, snips, data):
        fills = data.draw(st.lists(
            st.lists(cell_value, min_size=RAM_WORDS, max_size=RAM_WORDS),
            min_size=1, max_size=3))
        disable()
        bare = run_program(snips, fills)
        with observed():
            watched = run_program(snips, fills)
        assert watched == bare


class TestSessionIdentity:
    def test_chaos_session_transcript_identical(self):
        kw = dict(chaos=ChaosConfig(seed=7, transient_error=0.15,
                                    read_corrupt=0.02),
                  retry=RetryPolicy(max_attempts=5, backoff_us=50, seed=7))
        disable()
        bare = session_transcript(**kw)
        with observed():
            watched = session_transcript(**kw)
        assert watched == bare


class TestCampaignIdentity:
    def test_campaign_fingerprint_identical(self):
        kw = dict(design_kinds=("wrong_target",),
                  impl_kinds=("inverted_branch",), seeds=(1,),
                  duration_us=sec(1))

        def fingerprint():
            result = run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches, **kw)
            return result.summary_rows()

        disable()
        bare = fingerprint()
        with observed():
            watched = fingerprint()
        assert watched == bare


class TestLiveIdentity:
    """Heartbeats are telemetry too: on vs off changes no observable bit."""

    CAMPAIGN_KW = dict(design_kinds=("wrong_target",),
                       impl_kinds=("inverted_branch",), seeds=(1,),
                       duration_us=sec(1))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2 ** 16))
    def test_heartbeats_never_perturb_chaos_sessions(self, seed):
        kw = dict(chaos=ChaosConfig(seed=seed, transient_error=0.15,
                                    read_corrupt=0.02),
                  retry=RetryPolicy(max_attempts=5, backoff_us=50,
                                    seed=seed))
        disable()
        bare = session_transcript(**kw)
        agg = LiveAggregator(HeartbeatConfig(period_us=ms(5)))
        with observed():
            OBS.live = HeartbeatEmitter(agg.config, agg.feed, source="hb")
            watched = session_transcript(**kw)
            OBS.live.close()
        assert watched == bare
        # ...and the heartbeats genuinely flowed while we proved it
        assert agg.windows_fed > 0

    def test_heartbeat_campaign_fingerprint_and_store_identical(
            self, tmp_path):
        def campaign(root, runner):
            result = run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches, runner=runner,
                trace_dir=str(root), **self.CAMPAIGN_KW)
            return (result.summary_rows(),
                    export_campaign(campaign_store_root(str(root))))

        disable()
        bare = campaign(tmp_path / "bare", SerialRunner())
        agg = LiveAggregator(HeartbeatConfig(period_us=250_000))
        beating = campaign(tmp_path / "live", SerialRunner(live=agg))
        assert beating == bare
        assert agg.windows_fed > 0

    def test_serial_vs_fleet_alert_transcript_identical(self):
        # a second window width (offset from the exemplar's 250ms) so
        # the serial==fleet property is not one lucky period
        def transcript(runner_of):
            agg = LiveAggregator(HeartbeatConfig(period_us=125_000))
            run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches, runner=runner_of(agg),
                **self.CAMPAIGN_KW)
            return agg.close()

        disable()
        serial = transcript(lambda agg: SerialRunner(live=agg))
        fleet = transcript(lambda agg: FleetRunner(workers=2, live=agg))
        assert serial == fleet
