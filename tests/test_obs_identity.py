"""Property: telemetry never perturbs the system under observation.

The zero-interference invariant of ``repro.obs``: running any workload
with the registry/tracer enabled must leave every *observable* output
bit-identical to the disabled run — CPU machine state, emit logs,
fault pcs, session transcripts and campaign fingerprints. Telemetry is
read-only bookkeeping on the side; the moment it changes an outcome it
has become part of the experiment.

Randomized programs reuse the codegen-shaped snippet generator from
``test_superinstructions`` (the same corpus the fusion and batch
tiers are proven against).
"""

from hypothesis import given, settings, strategies as st

from test_superinstructions import (
    RAM_WORDS,
    RUN_LIMIT,
    STACK_DEPTH,
    assemble_program,
    build,
    snap,
    snippets,
)

from repro.comdes.examples import traffic_light_system
from repro.comm.chaos import ChaosConfig
from repro.comm.retry import RetryPolicy
from repro.engine.session import DebugSession
from repro.errors import TargetFault
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.obs import disable, observed
from repro.util.timeunits import ms, sec

cell_value = st.integers(-(2 ** 31), 2 ** 31 - 1)


def run_program(snips, fills):
    """One serial run: final machine state + any fault, per lane."""
    code = assemble_program(snips)
    outcomes = []
    for cells in fills:
        cpu = build(code, fuse=True)
        cpu.memory.cells[:len(cells)] = list(cells)
        try:
            cpu.run(max_instructions=RUN_LIMIT)
            fault = None
        except TargetFault as exc:
            fault = (str(exc), exc.pc)
        outcomes.append((snap(cpu), fault))
    return outcomes


def session_transcript(**kw):
    session = DebugSession(traffic_light_system(), channel_kind="passive",
                           poll_period_us=500, **kw).setup()
    session.run(ms(20))
    return (session.engine.trace.to_dicts(), session.transport_stats(),
            session.degradation_events)


class TestCpuIdentity:
    @settings(max_examples=30, deadline=None)
    @given(snips=snippets, data=st.data())
    def test_observed_run_is_bit_identical(self, snips, data):
        fills = data.draw(st.lists(
            st.lists(cell_value, min_size=RAM_WORDS, max_size=RAM_WORDS),
            min_size=1, max_size=3))
        disable()
        bare = run_program(snips, fills)
        with observed():
            watched = run_program(snips, fills)
        assert watched == bare


class TestSessionIdentity:
    def test_chaos_session_transcript_identical(self):
        kw = dict(chaos=ChaosConfig(seed=7, transient_error=0.15,
                                    read_corrupt=0.02),
                  retry=RetryPolicy(max_attempts=5, backoff_us=50, seed=7))
        disable()
        bare = session_transcript(**kw)
        with observed():
            watched = session_transcript(**kw)
        assert watched == bare


class TestCampaignIdentity:
    def test_campaign_fingerprint_identical(self):
        kw = dict(design_kinds=("wrong_target",),
                  impl_kinds=("inverted_branch",), seeds=(1,),
                  duration_us=sec(1))

        def fingerprint():
            result = run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches, **kw)
            return result.summary_rows()

        disable()
        bare = fingerprint()
        with observed():
            watched = fingerprint()
        assert watched == bare
