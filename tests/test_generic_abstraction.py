"""The "any MOF model" claim: abstraction over a non-COMDES metamodel.

The paper: "In principle, GMDF could accept all types of system model that
follow the MOF specification." The abstraction engine only touches the
reflective API, so it must work on a metamodel it has never seen — here, a
small UML-ish deployment metamodel with nodes, components and connectors.
"""

import pytest

from repro.comm.protocol import Command, CommandKind
from repro.engine.engine import DebuggerEngine
from repro.comm.channel import DebugChannel
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.guide import AbstractionGuide
from repro.gdm.mapping import MappingRule, MappingTable
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.scenegen import gdm_to_scene
from repro.meta.metamodel import AttributeKind, MetaModel
from repro.meta.model import Model
from repro.render.ascii_art import scene_to_ascii


def deployment_metamodel() -> MetaModel:
    """A UML-deployment-flavoured metamodel, unrelated to COMDES."""
    mm = MetaModel("uml_deploy")
    named = mm.define("Named", abstract=True)
    named.attribute("name", AttributeKind.STR, required=True)
    deployment = mm.define("Deployment", supertypes=["Named"])
    deployment.reference("nodes", "Node", containment=True, many=True)
    deployment.reference("connectors", "Connector", containment=True,
                         many=True)
    node = mm.define("Node", supertypes=["Named"])
    node.reference("components", "Component", containment=True, many=True)
    mm.define("Component", supertypes=["Named"]).attribute(
        "version", AttributeKind.STR, default="1.0")
    connector = mm.define("Connector", supertypes=["Named"])
    connector.reference("source", "Component", required=True)
    connector.reference("target", "Component", required=True)
    mm.check()
    return mm


def deployment_model() -> Model:
    model = Model(deployment_metamodel(), name="webshop")
    root = model.create("Deployment", name="webshop")
    model.add_root(root)
    gateway = model.create("Node", name="gateway")
    backend = model.create("Node", name="backend")
    root.add_ref("nodes", gateway)
    root.add_ref("nodes", backend)
    proxy = model.create("Component", name="proxy")
    api = model.create("Component", name="api")
    db = model.create("Component", name="db")
    gateway.add_ref("components", proxy)
    backend.add_ref("components", api)
    backend.add_ref("components", db)
    for name, src, dst in (("c1", proxy, api), ("c2", api, db)):
        connector = model.create("Connector", name=name)
        connector.set_ref("source", src)
        connector.set_ref("target", dst)
        root.add_ref("connectors", connector)
    return model


class TestForeignMetamodelAbstraction:
    def test_guide_lists_foreign_metaclasses(self):
        guide = AbstractionGuide(deployment_model())
        names = {name for name, _ in guide.element_list()}
        assert {"Deployment", "Node", "Component", "Connector"} <= names

    def test_abstraction_builds_gdm_from_foreign_model(self):
        model = deployment_model()
        table = MappingTable(model.metamodel)
        table.pair(MappingRule("Node", PatternSpec(PatternKind.RECTANGLE),
                               label_attr="name"))
        table.pair(MappingRule("Component", PatternSpec(PatternKind.CIRCLE),
                               group_by_container=True))
        table.pair(MappingRule("Connector", PatternSpec(PatternKind.ARROW),
                               render_as="edge"))
        gdm = AbstractionEngine(table).build(model)
        assert len(gdm.elements) == 5      # 2 nodes + 3 components
        assert len(gdm.links) == 2         # connectors via default resolver
        # Components grouped by their owning node.
        api = next(e for e in gdm.elements.values() if e.label == "api")
        assert len(gdm.elements_in_group(api.group)) == 2  # api + db

    def test_foreign_gdm_renders(self):
        model = deployment_model()
        guide = AbstractionGuide(model)
        guide.pair("Node", "Rectangle")
        guide.pair("Component", "Circle")
        guide.pair("Connector", "Arrow")
        gdm = guide.finish()
        art = scene_to_ascii(gdm_to_scene(gdm))
        for label in ("gateway", "api", "db"):
            assert label in art

    def test_foreign_gdm_animates_from_commands(self):
        # Commands key on source paths; foreign models fall back to object
        # ids, which work the same way end to end.
        model = deployment_model()
        guide = AbstractionGuide(model)
        guide.pair("Component", "Circle")
        gdm = guide.finish()
        component = next(iter(gdm.elements.values()))
        from repro.gdm.model import CommandBinding
        gdm.add_binding(CommandBinding(CommandKind.USER,
                                       component.source_path, "HIGHLIGHT"))
        engine = DebuggerEngine(gdm, channel=DebugChannel())
        engine.channel.deliver(
            Command(CommandKind.USER, component.source_path, 1))
        assert component.highlighted
