"""More property-based tests: layouts, persistence, builder round-trips."""

from hypothesis import given, settings, strategies as st

from repro.comdes.reflect import system_to_model
from repro.engine.replay import ReplayPlayer
from repro.engine.trace import ExecutionTrace
from repro.experiments.workloads import chain_system
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.gdm.store import gdm_from_json, gdm_to_json
from repro.render.layout import (
    assert_no_overlap, circular_layout, grid_layout, layered_layout,
)


class TestLayoutProperties:
    @given(n=st.integers(0, 60), cell_w=st.integers(2, 24),
           cell_h=st.integers(2, 10), gap=st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_grid_never_overlaps(self, n, cell_w, cell_h, gap):
        placement = grid_layout([f"n{i}" for i in range(n)],
                                cell_w=cell_w, cell_h=cell_h, gap=gap)
        assert_no_overlap(placement)
        assert len(placement) == n

    @given(n=st.integers(0, 40), cell_w=st.integers(4, 20))
    @settings(max_examples=60, deadline=None)
    def test_circle_never_overlaps(self, n, cell_w):
        placement = circular_layout([f"s{i}" for i in range(n)],
                                    cell_w=cell_w)
        assert_no_overlap(placement)

    @given(n=st.integers(1, 20), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_layered_dag_respects_edge_direction(self, n, seed):
        import random
        rng = random.Random(seed)
        ids = [f"v{i}" for i in range(n)]
        # Random forward edges only => a DAG by construction.
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.2:
                    edges.append((ids[i], ids[j]))
        placement = layered_layout(ids, edges)
        assert_no_overlap(placement)
        for src, dst in edges:
            assert placement[src].x < placement[dst].x


class TestPersistenceProperties:
    @given(n_states=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_gdm_json_roundtrip_any_size(self, n_states):
        model = system_to_model(chain_system(n_states))
        gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
        document = gdm_to_json(gdm)
        restored = gdm_from_json(document)
        assert gdm_to_json(restored) == document

    @given(n_states=st.integers(2, 10), rounds=st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_replay_of_serialized_trace_matches_live(self, n_states, rounds):
        from repro.engine.session import DebugSession
        from repro.util.timeunits import ms
        session = DebugSession(chain_system(n_states, period_us=ms(2)),
                               channel_kind="active")
        session.setup().run(ms(2) * rounds)
        live = sorted(e.source_path for e in session.gdm.elements.values()
                      if e.highlighted)
        restored = ExecutionTrace.from_dicts(session.trace.to_dicts())
        player = ReplayPlayer(restored, session.gdm)
        player.start()
        player.run_to_end()
        assert player.highlighted_paths() == live
