"""Tests for the debugger engine, breakpoints, stepping, trace and replay."""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.comdes.reflect import system_to_model
from repro.comm.channel import DebugChannel
from repro.comm.protocol import Command, CommandKind
from repro.engine.breakpoints import (
    BreakpointManager, CommandKindBreakpoint, SignalConditionBreakpoint,
    StateEntryBreakpoint, TransitionBreakpoint,
)
from repro.engine.engine import DebuggerEngine, EngineState
from repro.engine.replay import ReplayPlayer
from repro.engine.stepping import StepController
from repro.engine.timing_diagram import TimingDiagram
from repro.engine.trace import ExecutionTrace
from repro.errors import DebuggerError
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table


class FakeChannel(DebugChannel):
    """A hand-driven channel for engine unit tests."""

    def __init__(self):
        super().__init__()
        self.halted = False

    def halt_target(self):
        self.halted = True

    def resume_target(self):
        self.halted = False

    def send(self, kind, path, value=0, t=0):
        self.deliver(Command(kind, path, value, t_target=t, t_host=t))


def make_engine():
    model = system_to_model(traffic_light_system())
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    channel = FakeChannel()
    engine = DebuggerEngine(gdm, channel=channel)
    return engine, channel, gdm


S = "state:lights.lamp."


class TestEngineFsm:
    def test_starts_waiting_after_connect(self):
        engine, _, _ = make_engine()
        assert engine.state is EngineState.WAITING

    def test_disconnected_engine_rejects_commands(self):
        model = system_to_model(traffic_light_system())
        gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
        engine = DebuggerEngine(gdm)
        with pytest.raises(DebuggerError):
            engine.on_command(Command(CommandKind.USER, "signal:light", 0))

    def test_command_applies_bound_reaction(self):
        engine, channel, gdm = make_engine()
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert gdm.element_by_path(f"{S}GREEN").highlighted
        assert engine.commands_processed == 1

    def test_trace_records_every_command(self):
        engine, channel, _ = make_engine()
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1, t=100)
        channel.send(CommandKind.SIG_UPDATE, "signal:light", 1, t=200)
        assert len(engine.trace) == 2
        assert engine.trace[0].command.path == f"{S}GREEN"

    def test_frames_captured_on_reactions(self):
        engine, channel, _ = make_engine()
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert len(engine.frames) == 1
        assert engine.frames[0].highlighted()

    def test_commands_while_paused_are_counted_not_processed(self):
        engine, channel, gdm = make_engine()
        engine.pause()
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert engine.commands_processed == 0
        assert engine.commands_while_paused == 1
        assert not gdm.element_by_path(f"{S}GREEN").highlighted

    def test_state_change_events_published(self):
        engine, channel, _ = make_engine()
        transitions = []
        engine.bus.subscribe("engine_state",
                             lambda previous, current: transitions.append(
                                 (previous, current)))
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert (EngineState.WAITING, EngineState.REACTING) in transitions
        assert (EngineState.REACTING, EngineState.WAITING) in transitions


class TestBreakpoints:
    def test_state_entry_breakpoint_pauses_and_halts(self):
        engine, channel, _ = make_engine()
        engine.breakpoints.add(StateEntryBreakpoint(f"{S}YELLOW"))
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert engine.state is EngineState.WAITING
        channel.send(CommandKind.STATE_ENTER, f"{S}YELLOW", 2)
        assert engine.state is EngineState.PAUSED
        assert channel.halted

    def test_breakpoint_event_published(self):
        engine, channel, _ = make_engine()
        hits = []
        engine.bus.subscribe("breakpoint",
                             lambda breakpoint, command: hits.append(
                                 breakpoint.description))
        engine.breakpoints.add(StateEntryBreakpoint(f"{S}GREEN"))
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert hits

    def test_signal_condition_breakpoint(self):
        engine, channel, _ = make_engine()
        engine.breakpoints.add(SignalConditionBreakpoint(
            "signal:light", lambda v: v == 2))
        channel.send(CommandKind.SIG_UPDATE, "signal:light", 1)
        assert engine.state is EngineState.WAITING
        channel.send(CommandKind.SIG_UPDATE, "signal:light", 2)
        assert engine.state is EngineState.PAUSED

    def test_transition_breakpoint_prefix(self):
        bp = TransitionBreakpoint("trans:lights.lamp.")
        assert bp.matches(Command(CommandKind.TRANS_FIRED,
                                  "trans:lights.lamp.0.RED->GREEN", 0))
        assert not bp.matches(Command(CommandKind.TRANS_FIRED,
                                      "trans:other.0.A->B", 0))

    def test_kind_breakpoint(self):
        bp = CommandKindBreakpoint(CommandKind.TASK_START)
        assert bp.matches(Command(CommandKind.TASK_START, "actor:x", 0))

    def test_disabled_breakpoint_ignored(self):
        engine, channel, _ = make_engine()
        bp = engine.breakpoints.add(StateEntryBreakpoint(f"{S}GREEN"))
        bp.enabled = False
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert engine.state is EngineState.WAITING

    def test_hit_counts(self):
        manager = BreakpointManager()
        bp = manager.add(CommandKindBreakpoint(CommandKind.USER))
        manager.check(Command(CommandKind.USER, "signal:x", 0))
        manager.check(Command(CommandKind.USER, "signal:x", 0))
        assert bp.hit_count == 2

    def test_path_kind_validation(self):
        with pytest.raises(DebuggerError):
            StateEntryBreakpoint("signal:light")
        with pytest.raises(DebuggerError):
            SignalConditionBreakpoint("state:a.b.S", lambda v: True)
        with pytest.raises(DebuggerError):
            TransitionBreakpoint("state:a.b.S")

    def test_remove_unknown_breakpoint(self):
        manager = BreakpointManager()
        with pytest.raises(DebuggerError):
            manager.remove(CommandKindBreakpoint(CommandKind.USER))


class TestStepping:
    def test_step_processes_exactly_n_commands(self):
        engine, channel, _ = make_engine()
        stepper = StepController(engine)
        stepper.pause()
        stepper.step(2)
        assert engine.state is EngineState.WAITING
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert engine.state is EngineState.WAITING  # budget 1 left
        channel.send(CommandKind.STATE_ENTER, f"{S}YELLOW", 2)
        assert engine.state is EngineState.PAUSED   # budget exhausted
        assert channel.halted

    def test_resume_clears_budget(self):
        engine, channel, _ = make_engine()
        stepper = StepController(engine)
        stepper.pause()
        stepper.step(1)
        stepper.pause()
        stepper.resume()
        channel.send(CommandKind.STATE_ENTER, f"{S}GREEN", 1)
        assert engine.state is EngineState.WAITING  # free-running

    def test_step_requires_paused(self):
        engine, _, _ = make_engine()
        stepper = StepController(engine)
        with pytest.raises(DebuggerError):
            stepper.step()

    def test_step_count_positive(self):
        engine, _, _ = make_engine()
        stepper = StepController(engine)
        stepper.pause()
        with pytest.raises(DebuggerError):
            stepper.step(0)


class TestTraceAndReplay:
    def fill_trace(self):
        engine, channel, gdm = make_engine()
        script = [
            (CommandKind.STATE_ENTER, f"{S}GREEN", 1, 100),
            (CommandKind.SIG_UPDATE, "signal:light", 1, 150),
            (CommandKind.STATE_ENTER, f"{S}YELLOW", 2, 500),
            (CommandKind.SIG_UPDATE, "signal:light", 2, 550),
            (CommandKind.STATE_ENTER, f"{S}RED", 0, 700),
        ]
        for kind, path, value, t in script:
            channel.send(kind, path, value, t=t)
        return engine, gdm

    def test_trace_filters(self):
        engine, _ = self.fill_trace()
        states = engine.trace.events(kind=CommandKind.STATE_ENTER)
        assert len(states) == 3
        lamp = engine.trace.events(path_prefix="signal:")
        assert len(lamp) == 2

    def test_trace_serialization_roundtrip(self):
        engine, _ = self.fill_trace()
        data = engine.trace.to_dicts()
        restored = ExecutionTrace.from_dicts(data)
        assert restored.to_dicts() == data
        assert len(restored) == len(engine.trace)

    def test_replay_reproduces_final_highlight(self):
        engine, gdm = self.fill_trace()
        live_highlights = sorted(
            e.source_path for e in gdm.elements.values() if e.highlighted)
        player = ReplayPlayer(engine.trace, gdm)
        player.start()
        player.run_to_end()
        assert player.highlighted_paths() == live_highlights

    def test_replay_is_deterministic(self):
        engine, gdm = self.fill_trace()
        player = ReplayPlayer(engine.trace, gdm)
        player.start()
        player.run_to_end()
        first = [f.highlighted() for f in player.frames.frames()]
        player.start()
        player.run_to_end()
        second = [f.highlighted() for f in player.frames.frames()]
        assert first == second

    def test_replay_seek(self):
        engine, gdm = self.fill_trace()
        player = ReplayPlayer(engine.trace, gdm)
        player.seek(1)  # after GREEN highlight only
        assert player.highlighted_paths() == [f"{S}GREEN"]

    def test_seek_out_of_range(self):
        engine, gdm = self.fill_trace()
        player = ReplayPlayer(engine.trace, gdm)
        with pytest.raises(DebuggerError):
            player.seek(99)

    def test_replay_requires_start(self):
        engine, gdm = self.fill_trace()
        player = ReplayPlayer(engine.trace, gdm)
        with pytest.raises(DebuggerError):
            player.step()

    def test_engine_replay_handshake(self):
        engine, gdm = self.fill_trace()
        engine.enter_replay()
        assert engine.state is EngineState.REPLAYING
        with pytest.raises(DebuggerError):
            engine.on_command(Command(CommandKind.USER, "signal:light", 0))
        engine.leave_replay()
        assert engine.state is EngineState.WAITING


class TestTimingDiagram:
    def test_lanes_built_from_trace(self):
        engine, _ = TestTraceAndReplay().fill_trace()
        diagram = TimingDiagram(engine.trace)
        assert "state:lights.lamp" in diagram.lanes
        assert "signal:light" in diagram.lanes

    def test_state_lane_interval_labels(self):
        engine, _ = TestTraceAndReplay().fill_trace()
        diagram = TimingDiagram(engine.trace)
        labels = [label for _, _, label in
                  diagram.lanes["state:lights.lamp"].intervals]
        assert labels == ["GREEN", "YELLOW", "RED"]

    def test_ascii_render_contains_lanes(self):
        engine, _ = TestTraceAndReplay().fill_trace()
        art = TimingDiagram(engine.trace).render_ascii(40)
        assert "GREEN" in art and "signal:light" in art

    def test_svg_render_produces_document(self):
        engine, _ = TestTraceAndReplay().fill_trace()
        svg = TimingDiagram(engine.trace).render_svg()
        assert svg.startswith("<svg") and "YELLOW" in svg

    def test_empty_trace_rejected(self):
        with pytest.raises(DebuggerError):
            TimingDiagram(ExecutionTrace())
