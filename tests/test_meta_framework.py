"""Tests for the reflective metamodeling framework."""

import pytest

from repro.errors import MetamodelError, ModelError, ValidationError
from repro.meta.metamodel import AttributeKind, MetaModel
from repro.meta.model import Model
from repro.meta.registry import MetamodelRegistry
from repro.meta.serialize import model_from_dict, model_to_dict
from repro.meta.validate import validate_model, validation_problems


def library_metamodel() -> MetaModel:
    """A tiny metamodel used across these tests."""
    mm = MetaModel("library")
    named = mm.define("Named", abstract=True)
    named.attribute("name", AttributeKind.STR, required=True)
    lib = mm.define("Library", supertypes=["Named"])
    lib.reference("books", "Book", containment=True, many=True)
    lib.reference("featured", "Book")  # cross reference
    book = mm.define("Book", supertypes=["Named"])
    book.attribute("pages", AttributeKind.INT, default=100)
    book.attribute("genre", AttributeKind.ENUM,
                   enum_values=("novel", "reference"), default="novel")
    mm.check()
    return mm


class TestMetamodelDefinition:
    def test_duplicate_class_rejected(self):
        mm = MetaModel("m")
        mm.define("A")
        with pytest.raises(MetamodelError):
            mm.define("A")

    def test_unknown_supertype_caught_by_check(self):
        mm = MetaModel("m")
        mm.define("A", supertypes=["Missing"])
        with pytest.raises(MetamodelError):
            mm.check()

    def test_inheritance_cycle_caught(self):
        mm = MetaModel("m")
        mm.define("A", supertypes=["B"])
        mm.define("B", supertypes=["A"])
        with pytest.raises(MetamodelError):
            mm.check()

    def test_unknown_reference_target_caught(self):
        mm = MetaModel("m")
        mm.define("A").reference("r", "Nowhere")
        with pytest.raises(MetamodelError):
            mm.check()

    def test_inherited_features_visible(self):
        mm = library_metamodel()
        book = mm.metaclass("Book")
        assert "name" in book.all_attributes()
        assert book.is_subtype_of("Named")
        assert not book.is_subtype_of("Library")

    def test_enum_attribute_requires_values(self):
        mm = MetaModel("m")
        with pytest.raises(MetamodelError):
            mm.define("A").attribute("e", AttributeKind.ENUM)

    def test_bad_default_rejected(self):
        mm = MetaModel("m")
        with pytest.raises(MetamodelError):
            mm.define("A").attribute("n", AttributeKind.INT, default="oops")


class TestModelObjects:
    def test_create_and_attribute_roundtrip(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="Dune", pages=412)
        assert book.get("name") == "Dune"
        assert book.get("pages") == 412

    def test_default_applies_when_unset(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="X")
        assert book.get("pages") == 100

    def test_abstract_class_not_instantiable(self):
        model = Model(library_metamodel())
        with pytest.raises(ModelError):
            model.create("Named", name="nope")

    def test_wrong_attribute_type_rejected(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="X")
        with pytest.raises(ModelError):
            book.set("pages", "many")

    def test_bool_is_not_an_int(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="X")
        with pytest.raises(ModelError):
            book.set("pages", True)

    def test_enum_value_checked(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="X")
        book.set("genre", "reference")
        with pytest.raises(ModelError):
            book.set("genre", "poetry")

    def test_unknown_attribute_rejected(self):
        model = Model(library_metamodel())
        book = model.create("Book", name="X")
        with pytest.raises(ModelError):
            book.get("isbn")

    def test_containment_sets_container(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        book = model.create("Book", name="Dune")
        lib.add_ref("books", book)
        assert book.container is lib
        assert book in lib.children()

    def test_object_cannot_be_contained_twice(self):
        model = Model(library_metamodel())
        a = model.create("Library", name="A")
        b = model.create("Library", name="B")
        book = model.create("Book", name="Dune")
        a.add_ref("books", book)
        with pytest.raises(ModelError):
            b.add_ref("books", book)

    def test_single_reference_set_and_replace(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        b1 = model.create("Book", name="One")
        b2 = model.create("Book", name="Two")
        lib.set_ref("featured", b1)
        lib.set_ref("featured", b2)
        assert lib.ref("featured") is b2

    def test_reference_type_checked(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        other = model.create("Library", name="Other")
        with pytest.raises(ModelError):
            lib.add_ref("books", other)

    def test_remove_ref_clears_container(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        book = model.create("Book", name="Dune")
        lib.add_ref("books", book)
        lib.remove_ref("books", book)
        assert book.container is None

    def test_iter_tree_preorder(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        model.add_root(lib)
        for title in ("A", "B"):
            lib.add_ref("books", model.create("Book", name=title))
        names = [obj.label for obj in lib.iter_tree()]
        assert names == ["City", "A", "B"]

    def test_objects_of_honours_subtyping(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        model.add_root(lib)
        lib.add_ref("books", model.create("Book", name="A"))
        assert len(model.objects_of("Named")) == 2
        assert len(model.objects_of("Book")) == 1


class TestValidation:
    def test_missing_required_attribute_reported(self):
        model = Model(library_metamodel())
        lib = model.create("Library")
        model.add_root(lib)
        problems = validation_problems(model)
        assert any("name" in p for p in problems)

    def test_valid_model_passes(self):
        model = Model(library_metamodel())
        lib = model.create("Library", name="City")
        model.add_root(lib)
        validate_model(model)  # must not raise

    def test_validation_error_carries_problems(self):
        model = Model(library_metamodel())
        model.add_root(model.create("Library"))
        with pytest.raises(ValidationError) as excinfo:
            validate_model(model)
        assert excinfo.value.problems


class TestSerialization:
    def build(self):
        model = Model(library_metamodel(), name="demo")
        lib = model.create("Library", name="City")
        model.add_root(lib)
        b1 = model.create("Book", name="One", pages=7)
        b2 = model.create("Book", name="Two", genre="reference")
        lib.add_ref("books", b1)
        lib.add_ref("books", b2)
        lib.set_ref("featured", b2)
        return model

    def test_roundtrip_preserves_structure(self):
        original = self.build()
        restored = model_from_dict(model_to_dict(original), library_metamodel())
        assert model_to_dict(restored) == model_to_dict(original)

    def test_roundtrip_preserves_cross_reference(self):
        restored = model_from_dict(model_to_dict(self.build()), library_metamodel())
        lib = restored.roots[0]
        assert lib.ref("featured").get("name") == "Two"

    def test_wrong_metamodel_rejected(self):
        data = model_to_dict(self.build())
        other = MetaModel("other")
        other.define("X")
        with pytest.raises(ModelError):
            model_from_dict(data, other)


class TestRegistry:
    def test_register_and_get(self):
        registry = MetamodelRegistry()
        mm = library_metamodel()
        registry.register(mm)
        assert registry.get("library") is mm
        assert "library" in registry

    def test_duplicate_registration_rejected(self):
        registry = MetamodelRegistry()
        registry.register(library_metamodel())
        with pytest.raises(MetamodelError):
            registry.register(library_metamodel())

    def test_unknown_lookup_raises(self):
        with pytest.raises(MetamodelError):
            MetamodelRegistry().get("nope")
