"""Tests for the fleet subsystem: jobs, pool, merge, campaign parity.

The headline invariant: a campaign run through worker processes is
*equal* to the serial one — same outcomes, same order, same summary
bytes — for any worker count, chunk size and completion order. Plus the
failure contract: worker exceptions and worker deaths come back as
structured failures, never hangs or holes.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.comdes.examples import traffic_light_system
from repro.comm.link import DirectLink, write_patches
from repro.errors import FleetError
from repro.experiments.requirements import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import (
    FleetRunner,
    JobSpec,
    SerialRunner,
    callable_ref,
    derive_seed,
    enumerate_campaign_jobs,
    merge_results,
    resolve_ref,
    run_job,
    seed_stream,
)
from repro.codegen import InstrumentationPlan
from repro.target.board import Board
from repro.target.memory import RAM_BASE
from repro.util.timeunits import sec


def raising_system():
    """A system factory that blows up inside the worker (importable)."""
    raise RuntimeError("synthetic worker-side explosion")


def exiting_system():
    """A system factory that kills its worker process outright."""
    os._exit(3)


CAMPAIGN_KW = dict(
    design_kinds=("wrong_target", "remove_transition"),
    impl_kinds=("inverted_branch", "init_corrupt"),
    seeds=(1, 2),
    duration_us=sec(2),
)


def small_specs(**overrides):
    kw = dict(CAMPAIGN_KW)
    kw.update(overrides)
    return enumerate_campaign_jobs(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, plan=InstrumentationPlan.full(), **kw)


def summary_bytes(result):
    return json.dumps(result.summary_rows(), sort_keys=True).encode()


class TestCallableRefs:
    def test_roundtrip(self):
        ref = callable_ref(traffic_light_system)
        assert ref == "repro.comdes.examples:traffic_light_system"
        assert resolve_ref(ref) is traffic_light_system

    def test_lambda_rejected_with_actionable_error(self):
        with pytest.raises(FleetError, match="module-level"):
            callable_ref(lambda: None)

    def test_closure_rejected(self):
        def outer():
            def inner():
                return None
            return inner
        with pytest.raises(FleetError, match="module-level"):
            callable_ref(outer())

    def test_malformed_ref_rejected(self):
        with pytest.raises(FleetError, match="malformed"):
            resolve_ref("no-colon-here")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(FleetError):
            resolve_ref("repro.comdes.examples:not_a_thing")


class TestSeedDerivation:
    @given(st.integers(0, 2**32), st.text(max_size=20), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_63_bit(self, master, label, i):
        a = derive_seed(master, label, i)
        assert a == derive_seed(master, label, i)
        assert 0 <= a < 2**63

    def test_parts_matter(self):
        assert derive_seed(1, "op_swap", 0) != derive_seed(1, "op_swap", 1)
        assert derive_seed(1, "op_swap", 0) != derive_seed(2, "op_swap", 0)

    def test_stream_is_prefix_stable(self):
        assert seed_stream(7, "gain_sign", 3) == seed_stream(7, "gain_sign", 5)[:3]


class TestEnumeration:
    def test_canonical_order_control_first(self):
        specs = small_specs()
        assert specs[0].category == "control" and specs[0].index == 0
        ids = [s.job_id for s in specs[1:]]
        assert ids[0] == "design/wrong_target/1"
        assert ids[-1] == "implementation/init_corrupt/2"
        assert [s.index for s in specs] == list(range(len(specs)))

    def test_prebuilt_watch_list_rejected(self):
        with pytest.raises(FleetError, match="factory"):
            enumerate_campaign_jobs(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches(),  # called: a list, not a factory
                design_kinds=(), impl_kinds=(), seeds=(1,),
                duration_us=sec(1), plan=InstrumentationPlan.full())

    def test_bad_category_rejected(self):
        with pytest.raises(FleetError, match="category"):
            JobSpec(1, "martian", "k", 1, sec(1), "a:b", "a:b", "a:b",
                    InstrumentationPlan.full())


class TestCampaignParity:
    @pytest.fixture(scope="class")
    def inline_result(self):
        return run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches(), **CAMPAIGN_KW)

    def test_serial_runner_equals_inline(self, inline_result):
        serial = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=SerialRunner(), **CAMPAIGN_KW)
        assert summary_bytes(serial) == summary_bytes(inline_result)
        assert serial.false_positives == inline_result.false_positives
        assert ([o.fault.fault_id for o in serial.outcomes]
                == [o.fault.fault_id for o in inline_result.outcomes])

    @pytest.mark.parametrize("workers,chunk_size", [(4, None), (4, 1), (2, 3)])
    def test_fleet_runner_equals_inline(self, inline_result, workers,
                                        chunk_size):
        fleet = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches,
            runner=FleetRunner(workers=workers, chunk_size=chunk_size),
            **CAMPAIGN_KW)
        assert summary_bytes(fleet) == summary_bytes(inline_result)
        assert fleet.false_positives == inline_result.false_positives
        for ours, theirs in zip(fleet.outcomes, inline_result.outcomes):
            assert ours.fault.fault_id == theirs.fault.fault_id
            assert ours.model_detected == theirs.model_detected
            assert ours.model_latency_us == theirs.model_latency_us
            assert ours.code_detected == theirs.code_detected
            assert ours.code_latency_us == theirs.code_latency_us
            assert ours.classified_as == theirs.classified_as

    def test_parity_across_master_seeds(self):
        # Same derived seed tuple => same campaign, serial or parallel.
        seeds = seed_stream(99, "campaign", 2)
        seeds = tuple(s % 1000 for s in seeds)  # keep injector RNG happy
        kw = dict(CAMPAIGN_KW)
        kw["seeds"] = seeds
        serial = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=SerialRunner(), **kw)
        fleet = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches,
            runner=FleetRunner(workers=4, chunk_size=2), **kw)
        assert summary_bytes(serial) == summary_bytes(fleet)


class TestMergeInvariance:
    """Merge output is independent of completion order and chunking."""

    @pytest.fixture(scope="class")
    def executed(self):
        specs = small_specs(impl_kinds=("inverted_branch",), seeds=(1,))
        return specs, [run_job(spec) for spec in specs]

    @given(shuffle=st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_any_result_order_same_campaign(self, executed, shuffle):
        specs, results = executed
        reference = merge_results(specs, results)
        shuffled = list(results)
        shuffle.shuffle(shuffled)
        merged = merge_results(specs, shuffled)
        assert summary_bytes(merged) == summary_bytes(reference)
        assert ([o.fault.fault_id for o in merged.outcomes]
                == [o.fault.fault_id for o in reference.outcomes])

    def test_duplicate_result_rejected(self, executed):
        specs, results = executed
        with pytest.raises(FleetError, match="duplicate"):
            merge_results(specs, results[:-1] + [results[0]])

    def test_count_mismatch_rejected(self, executed):
        specs, results = executed
        with pytest.raises(FleetError, match="count"):
            merge_results(specs, results[:-1])


class TestStructuredFailures:
    def _spec(self, index, system_ref, kind="wrong_target"):
        return JobSpec(index, "design", kind, 1, sec(1), system_ref,
                       callable_ref(traffic_light_monitor_suite),
                       callable_ref(traffic_light_code_watches),
                       InstrumentationPlan.full())

    def test_worker_exception_becomes_structured_failure(self):
        result = run_job(self._spec(1, "test_fleet:raising_system"))
        assert result.failed
        assert result.error["type"] == "RuntimeError"
        assert "synthetic worker-side explosion" in result.error["message"]
        assert "raising_system" in result.error["traceback"]

    def test_worker_death_becomes_structured_failure(self):
        specs = [
            self._spec(0, callable_ref(traffic_light_system)),
            self._spec(1, "test_fleet:exiting_system"),
            self._spec(2, callable_ref(traffic_light_system),
                       kind="remove_transition"),
        ]
        # One chunk: the crasher takes its chunk mates down with the
        # pool; the retry pass must still complete the innocent jobs.
        runner = FleetRunner(workers=2, chunk_size=3)
        results = runner.run(specs)
        assert [r.index for r in results] == [0, 1, 2]
        assert not results[0].failed and not results[2].failed
        assert results[1].failed
        assert results[1].error["type"] == "WorkerCrashed"

    def test_strict_merge_raises_with_job_identity(self):
        specs = small_specs(design_kinds=(), impl_kinds=(), seeds=())
        specs.append(self._spec(1, "test_fleet:raising_system"))
        results = SerialRunner().run(specs)
        with pytest.raises(FleetError, match="design/wrong_target/1"):
            merge_results(specs, results)

    def test_failed_control_is_fatal_even_when_lenient(self):
        control = JobSpec(0, "control", "", 0, sec(1),
                          "test_fleet:raising_system",
                          callable_ref(traffic_light_monitor_suite),
                          callable_ref(traffic_light_code_watches),
                          InstrumentationPlan.full())
        results = SerialRunner().run([control])
        with pytest.raises(FleetError, match="control job failed"):
            merge_results([control], results, strict=False)

    def test_inline_result_has_empty_failures(self):
        result = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches(), design_kinds=("wrong_target",),
            impl_kinds=(), seeds=(1,), duration_us=sec(1))
        assert result.failures == []

    def test_lenient_merge_reports_failures(self):
        specs = small_specs(design_kinds=(), impl_kinds=(), seeds=())
        specs.append(self._spec(1, "test_fleet:raising_system"))
        results = SerialRunner().run(specs)
        merged = merge_results(specs, results, strict=False)
        assert merged.false_positives == 0
        assert len(merged.failures) == 1
        assert merged.failures[0].error["type"] == "RuntimeError"


class TestWritePatches:
    def test_contiguous_runs_become_single_transactions(self):
        board = Board()
        link = DirectLink(board)
        patches = [(RAM_BASE + a, a * 10) for a in (0, 1, 2, 7, 8, 40)]
        write_patches(link, patches)
        assert link.transactions == 3  # [0..2], [7..8], [40]
        assert link.words_written == 6
        for addr, value in patches:
            assert board.memory.peek(addr) == value

    def test_later_duplicate_wins(self):
        board = Board()
        write_patches(DirectLink(board), [(RAM_BASE, 1), (RAM_BASE, 2)])
        assert board.memory.peek(RAM_BASE) == 2

    def test_empty_is_free(self):
        link = DirectLink(Board())
        assert write_patches(link, []) == 0
        assert link.transactions == 0
