"""Tests for id generation, time units and 32-bit integer math."""

import pytest

from repro.util.ids import IdGenerator
from repro.util.intmath import INT_MAX, INT_MIN, sdiv, smod, wrap32
from repro.util.timeunits import MS, SEC, format_us, ms, sec, us


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("state") == "state#1"
        assert gen.next("state") == "state#2"
        assert gen.next("actor") == "actor#1"

    def test_peek_counts_issued(self):
        gen = IdGenerator()
        assert gen.peek("x") == 0
        gen.next("x")
        gen.next("x")
        assert gen.peek("x") == 2

    def test_reset_forgets(self):
        gen = IdGenerator()
        gen.next("x")
        gen.reset()
        assert gen.next("x") == "x#1"


class TestTimeUnits:
    def test_conversions(self):
        assert ms(10) == 10 * MS
        assert sec(2) == 2 * SEC
        assert us(5) == 5

    def test_fractional_conversion_rounds(self):
        assert ms(1.5) == 1500
        assert sec(0.25) == 250_000

    def test_format_picks_largest_exact_unit(self):
        assert format_us(42) == "42us"
        assert format_us(1500) == "1.5ms"
        assert format_us(3 * SEC) == "3s"
        assert format_us(2_500_000) == "2.5s"


class TestIntMath:
    def test_wrap32_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345

    def test_wrap32_wraps_overflow(self):
        assert wrap32(INT_MAX + 1) == INT_MIN
        assert wrap32(INT_MIN - 1) == INT_MAX
        assert wrap32(1 << 32) == 0

    def test_sdiv_truncates_toward_zero(self):
        assert sdiv(7, 2) == 3
        assert sdiv(-7, 2) == -3      # Python // would give -4
        assert sdiv(7, -2) == -3
        assert sdiv(-7, -2) == 3

    def test_smod_sign_follows_dividend(self):
        assert smod(7, 2) == 1
        assert smod(-7, 2) == -1      # Python % would give 1
        assert smod(7, -2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            sdiv(1, 0)
        with pytest.raises(ZeroDivisionError):
            smod(1, 0)

    def test_div_mod_consistency(self):
        for a in (-17, -5, 0, 3, 19):
            for b in (-7, -2, 1, 4):
                assert sdiv(a, b) * b + smod(a, b) == a
