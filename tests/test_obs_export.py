"""Chrome trace-event export: structure, lanes, determinism, CLI.

The exporter's contract (``repro/obs/export.py``):

* output is a Chrome/Perfetto trace-event document — every slice has
  ``ph``/``pid``/``tid``/``ts``/``dur``/``name``, lanes are declared
  with ``process_name``/``thread_name`` metadata, timestamps are
  **modeled microseconds** from the stores (never wall clock);
* within one ``(pid, tid)`` lane, slices appear in non-decreasing
  ``ts`` order;
* the rendering is canonical: two same-seed campaigns collected into
  different directories export byte-identical documents;
* ``python -m repro.obs.export --campaign <store>`` is the CLI face.
"""

import json

import pytest

from repro.comdes.examples import traffic_light_system
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import SerialRunner
from repro.obs.export import (
    chrome_trace,
    export_campaign,
    main as export_main,
    render_bytes,
)
from repro.obs.spans import SpanTracer
from repro.tracedb import campaign_store_root
from repro.util.timeunits import sec

KW = dict(design_kinds=("wrong_target",), impl_kinds=("inverted_branch",),
          seeds=(1,), duration_us=sec(1))


def collect(tmp_path, name):
    trace_dir = str(tmp_path / name)
    run_campaign(traffic_light_system, traffic_light_monitor_suite,
                 traffic_light_code_watches, runner=SerialRunner(),
                 trace_dir=trace_dir, **KW)
    return campaign_store_root(trace_dir)


@pytest.fixture(scope="module")
def campaign_root(tmp_path_factory):
    return collect(tmp_path_factory.mktemp("obs_export"), "a")


class TestStructure:
    @pytest.fixture(scope="class")
    def doc(self, campaign_root):
        return json.loads(export_campaign(campaign_root))

    def test_document_shape(self, doc):
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["timeUnit"] == "modeled microseconds"
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]

    def test_slices_have_required_fields(self, doc):
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices
        for e in slices:
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            assert isinstance(e["dur"], int) and e["dur"] >= 0
            assert e["name"]
            assert e["cat"]

    def test_lanes_are_declared_with_metadata(self, doc):
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
        named_lanes = {(e["pid"], e["tid"]) for e in meta
                       if e["name"] == "thread_name"}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} <= named_pids
        assert {(e["pid"], e["tid"]) for e in slices} <= named_lanes
        # lanes are per job: control + one design + one implementation
        assert len(named_pids) == 3

    def test_timestamps_monotone_per_lane(self, doc):
        last: dict = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            lane = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(lane, 0)
            last[lane] = e["ts"]

    def test_command_lane_from_engine_events(self, doc):
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "command" in cats  # engine trace events

    def test_activation_lane_from_kernel_spill(self, tmp_path):
        from repro.codegen import InstrumentationPlan
        from repro.codegen.pipeline import generate_firmware
        from repro.rtos.kernel import DtmKernel
        from repro.tracedb import TraceStore
        from repro.util.timeunits import ms
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        store = TraceStore(str(tmp_path / "jobs"), segment_events=16)
        kernel = DtmKernel(system, firmware, record_capacity=8,
                           record_spill=store)
        kernel.run(ms(500))
        store.flush()
        doc = chrome_trace(store=store)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices
        assert {e["cat"] for e in slices} == {"activation"}
        # activation slice = [release, completion] in modeled us
        records = {(r["actor"], r["index"]): r for r in store.events()}
        for e in slices:
            rec = records[(e["name"], e["args"]["index"])]
            assert e["ts"] == rec["release"]
            if not rec["skipped"] and rec["completion"] is not None:
                assert e["dur"] == rec["completion"] - rec["release"]


class TestDeterminism:
    def test_same_seed_exports_byte_identical(self, tmp_path_factory,
                                              campaign_root):
        again = collect(tmp_path_factory.mktemp("obs_export2"), "b")
        assert export_campaign(campaign_root) == export_campaign(again)

    def test_render_is_canonical(self, campaign_root):
        doc = json.loads(export_campaign(campaign_root))
        assert render_bytes(doc) == export_campaign(campaign_root)


class TestSpanExport:
    def test_span_lanes(self):
        tr = SpanTracer()
        tr.emit("poll", ts_us=100, dur_us=40, track=("comm", "jtag"),
                cat="poll")
        tr.emit("lights", ts_us=0, dur_us=900, track=("node", "node0"),
                cat="activation", args={"index": 0})
        doc = chrome_trace(spans=tr.snapshot())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"poll", "lights"}
        meta_names = {e["args"]["name"] for e in doc["traceEvents"]
                      if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta_names == {"comm", "node"}
        # span pids live in their own range, clear of store job pids
        assert all(e["pid"] >= 1000 for e in slices)

    def test_metrics_embedded_in_other_data(self):
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        doc = chrome_trace(metrics=reg.snapshot())
        assert doc["otherData"]["metrics"]["counters"]["c"][0]["value"] == 3


class TestCli:
    def test_cli_writes_file(self, campaign_root, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = export_main(["--campaign", campaign_root, "-o", str(out)])
        assert rc == 0
        assert out.read_bytes() == export_campaign(campaign_root)

    def test_cli_stdout(self, campaign_root, capsys):
        rc = export_main(["--campaign", campaign_root])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]

    def test_export_writes_out_path(self, campaign_root, tmp_path):
        out = tmp_path / "t.json"
        data = export_campaign(campaign_root, out_path=str(out))
        assert out.read_bytes() == data
