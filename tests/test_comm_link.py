"""Tests for the DebugLink layer: batching, accounting, cost model."""

import pytest

from repro.comdes.examples import blinker_system
from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comm.channel import PassiveChannel, PollPlan, WatchSpec
from repro.comm.jtag import JtagProbe, TapController, group_runs
from repro.comm.link import DebugLink, DirectLink, JtagLink, SerialLink
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.errors import CommError
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import Board, DebugPort
from repro.target.firmware import FirmwareImage, SymbolTable
from repro.target.isa import Instr
from repro.target.memory import RAM_BASE
from repro.util.timeunits import ms


def jtag_link(board=None, transport=None):
    board = board if board is not None else Board()
    probe = JtagProbe(TapController(DebugPort(board)), transport=transport)
    return board, JtagLink(probe)


def flat_firmware(n_symbols: int) -> FirmwareImage:
    """A do-nothing firmware with *n_symbols* watchable data words."""
    symbols = SymbolTable()
    for index in range(n_symbols):
        symbols.allocate(f"w{index}")
    return FirmwareImage("flat", [Instr("HALT")], {"idle": 0}, symbols, {})


class TestGroupRuns:
    def test_contiguous_addresses_form_one_run(self):
        assert group_runs([10, 11, 12, 13]) == [(10, 4)]

    def test_gaps_split_runs(self):
        assert group_runs([10, 11, 20, 21, 30]) == [(10, 2), (20, 2), (30, 1)]

    def test_order_and_duplicates_ignored(self):
        assert group_runs([12, 10, 11, 10]) == [(10, 3)]

    def test_run_word_total_matches_unique_addresses(self):
        addrs = [100, 101, 105, 103, 104, 101]
        runs = group_runs(addrs)
        assert sum(count for _, count in runs) == len(set(addrs))


class TestJtagLink:
    def test_read_word_matches_memory_and_counts_one_txn(self):
        board, link = jtag_link()
        board.memory.poke(RAM_BASE + 3, -77)
        value, cost = link.read_word(RAM_BASE + 3)
        assert value == -77
        assert cost > 0
        assert link.transactions == 1
        assert link.words_read == 1

    def test_read_block_equals_per_word_reads(self):
        board, link = jtag_link()
        for offset in range(6):
            board.memory.poke(RAM_BASE + offset, offset * 11 - 3)
        values, _ = link.read_block(RAM_BASE, 6)
        assert values == [offset * 11 - 3 for offset in range(6)]

    def test_scatter_preserves_input_order_and_duplicates(self):
        board, link = jtag_link()
        for offset in range(8):
            board.memory.poke(RAM_BASE + offset, 100 + offset)
        addrs = [RAM_BASE + 5, RAM_BASE, RAM_BASE + 5, RAM_BASE + 1]
        values, _ = link.read_scatter(addrs)
        assert values == [105, 100, 105, 101]
        assert link.transactions == 1

    def test_scatter_is_one_usb_transaction(self):
        transport = UsbTransport()
        board, link = jtag_link(transport=transport)
        link.read_scatter([RAM_BASE + i for i in range(64)])
        assert transport.transactions == 1

    def test_block_scan_cheaper_than_per_word_scans(self):
        _, batched = jtag_link(transport=UsbTransport())
        _, bursty = jtag_link(transport=UsbTransport())
        count = 16
        _, block_cost = batched.read_block(RAM_BASE, count)
        word_cost = sum(bursty.read_word(RAM_BASE + i)[1]
                        for i in range(count))
        assert block_cost < word_cost / 4

    def test_write_word_roundtrip(self):
        board, link = jtag_link()
        cost = link.write_word(RAM_BASE + 9, 4242)
        assert board.memory.peek(RAM_BASE + 9) == 4242
        assert cost > 0
        assert link.words_written == 1

    def test_halt_resume(self):
        board, link = jtag_link()
        link.halt_target()
        assert board.stalled
        link.resume_target()
        assert not board.stalled

    def test_reads_cost_zero_target_cycles(self):
        board, link = jtag_link()
        link.read_scatter([RAM_BASE + i for i in range(32)])
        assert board.cpu.cycles == 0
        assert board.memory.reads == 0  # backdoor plane, not the CPU's

    def test_stats_snapshot(self):
        _, link = jtag_link()
        link.read_block(RAM_BASE, 4)
        stats = link.stats()
        assert stats["kind"] == "jtag"
        assert stats["transactions"] == 1
        assert stats["words_read"] == 4
        assert stats["cost_us_total"] > 0


class TestSerialLink:
    def test_transmit_frame_charges_line_and_latency(self):
        link = SerialLink(Rs232Link(115200), host_latency_us=50)
        frame = b"\x7e12345678"
        wire, t_done, t_arrive = link.transmit_frame(1000, frame)
        assert wire == frame
        line_us = round(len(frame) * 10 * 1_000_000 / 115200)
        assert t_done == 1000 + line_us
        assert t_arrive == t_done + 50
        assert link.transactions == 1
        assert link.frames_carried == 1
        assert link.cost_us_total == line_us + 50

    def test_queueing_wait_is_not_billed_as_transport_cost(self):
        link = SerialLink(Rs232Link(9600), host_latency_us=50)
        frame = b"\x7e12345678"
        _, _, _ = link.transmit_frame(0, frame)
        first_cost = link.cost_us_total
        # Second frame ready immediately: it waits behind the first on
        # the line, but its transport cost is identical.
        _, t_done2, _ = link.transmit_frame(0, frame)
        assert link.cost_us_total == 2 * first_cost
        assert t_done2 > first_cost  # it did queue, though

    def test_cannot_read_memory(self):
        link = SerialLink(Rs232Link())
        with pytest.raises(CommError):
            link.read_word(RAM_BASE)

    def test_halt_needs_board(self):
        with pytest.raises(CommError):
            SerialLink(Rs232Link()).halt_target()
        board = Board()
        link = SerialLink(Rs232Link(), board=board)
        link.halt_target()
        assert board.stalled

    def test_negative_latency_rejected(self):
        with pytest.raises(CommError):
            SerialLink(Rs232Link(), host_latency_us=-1)


class TestDirectLink:
    def test_reads_are_free_but_accounted(self):
        board = Board()
        board.memory.poke(RAM_BASE + 2, 9)
        link = DirectLink(board)
        value, cost = link.read_word(RAM_BASE + 2)
        assert (value, cost) == (9, 0)
        values, cost = link.read_scatter([RAM_BASE + 2, RAM_BASE + 2])
        assert (values, cost) == ([9, 9], 0)
        assert link.transactions == 2

    def test_write_and_halt(self):
        board = Board()
        link = DirectLink(board)
        link.write_word(RAM_BASE, 5)
        assert board.memory.peek(RAM_BASE) == 5
        link.halt_target()
        assert board.stalled

    def test_base_link_refuses_everything(self):
        link = DebugLink()
        for call in (lambda: link.read_word(0),
                     lambda: link.read_block(0, 1),
                     lambda: link.read_scatter([0]),
                     lambda: link.write_word(0, 0),
                     lambda: link.transmit_frame(0, b"x"),
                     lambda: link.halt_target()):
            with pytest.raises(CommError):
                call()


class TestPassivePollBatching:
    """The acceptance criterion: one transaction per poll, any watch count."""

    def make_channel(self, n_watches: int, poll_period_us: int = 500):
        firmware = flat_firmware(n_watches)
        board = Board()
        board.load_firmware(firmware)
        transport = UsbTransport()
        probe = JtagProbe(TapController(DebugPort(board)),
                          transport=transport)
        watches = [
            WatchSpec(f"w{index}",
                      lambda value, index=index: None)  # silent watches
            for index in range(n_watches)
        ]
        sim = Simulator()
        channel = PassiveChannel(sim, probe, firmware, watches,
                                 poll_period_us=poll_period_us)
        return sim, channel, transport

    def test_64_watches_poll_in_exactly_one_usb_transaction(self):
        sim, channel, transport = self.make_channel(64)
        channel.start()
        before = transport.transactions
        sim.run_until(500 * 10)  # ten polls
        assert channel.polls == 10
        assert transport.transactions - before == 10  # one txn per poll

    def test_poll_plan_compiled_once_with_contiguous_runs(self):
        sim, channel, _ = self.make_channel(8)
        assert channel.plan is None
        channel.start()
        assert isinstance(channel.plan, PollPlan)
        assert len(channel.plan.addrs) == 8
        assert channel.plan.runs == [(RAM_BASE, 8)]  # sequential allocation

    def test_scan_cost_grows_sublinearly_in_watch_count(self):
        def cost_per_poll(n):
            sim, channel, _ = self.make_channel(n)
            channel.start()
            sim.run_until(500)
            return channel.scan_us_total
        assert cost_per_poll(64) < 16 * cost_per_poll(1)

    def test_symbols_resolved_once_not_per_poll(self):
        """Satellite check: no symbol-table lookups on the poll path."""
        sim, channel, _ = self.make_channel(8)
        symbols = channel.firmware.symbols
        calls = {"addr_of": 0}
        original = symbols.addr_of

        def counting_addr_of(name):
            calls["addr_of"] += 1
            return original(name)

        symbols.addr_of = counting_addr_of
        channel.start()
        after_start = calls["addr_of"]
        assert after_start == 8  # once per watch, at compile time
        sim.run_until(500 * 50)  # fifty polls
        assert channel.polls == 50
        assert calls["addr_of"] == after_start  # polls never resolve again

    def test_channel_accepts_explicit_link(self):
        firmware = flat_firmware(2)
        board = Board()
        board.load_firmware(firmware)
        link = JtagLink(JtagProbe(TapController(DebugPort(board))))
        channel = PassiveChannel(
            Simulator(), None, firmware,
            [WatchSpec("w0", lambda v: None)], link=link)
        assert channel.link is link
        assert channel.probe is link.probe
        with pytest.raises(CommError):
            PassiveChannel(Simulator(), None, firmware,
                           [WatchSpec("w0", lambda v: None)])

    def test_end_to_end_batched_channel_still_sees_changes(self):
        """The refactored poll path against real generated firmware."""
        system = blinker_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        sim = Simulator()
        kernel = DtmKernel(system, firmware, sim=sim)
        board = kernel.board_of("node0")
        transport = UsbTransport()
        probe = JtagProbe(TapController(DebugPort(board)),
                          transport=transport)
        machine = system.actor("blinky").network.block("blink").machine
        channel = PassiveChannel(
            sim, probe, firmware,
            [WatchSpec.state_machine("blinky", "blink", machine),
             WatchSpec.signal("blinky", "led", "led")],
            poll_period_us=500)
        channel.start()
        received = []
        channel.subscribe(received.append)
        kernel.run(ms(10) * 30)
        assert received
        assert transport.transactions == channel.polls + 1  # + baseline
