"""Target control through the passive channel: breakpoints via JTAG HALT."""

from repro.comdes.examples import blinker_system, traffic_light_system
from repro.engine.breakpoints import StateEntryBreakpoint
from repro.engine.engine import EngineState
from repro.engine.session import DebugSession
from repro.util.timeunits import ms


class TestPassiveBreakpoints:
    def test_breakpoint_halts_target_through_tap(self):
        session = DebugSession(traffic_light_system(), channel_kind="passive",
                               poll_period_us=500)
        session.setup()
        session.engine.breakpoints.add(
            StateEntryBreakpoint("state:lights.lamp.GREEN"))
        session.run(ms(100) * 20)
        assert session.engine.state is EngineState.PAUSED
        # The halt travelled through the TAP's HALT instruction.
        assert session.kernel.board_of("node0").stalled
        skipped_before = session.kernel.jobs_skipped
        session.run_for(ms(100) * 5)
        assert session.kernel.jobs_skipped > skipped_before

    def test_resume_through_tap_restarts_jobs(self):
        session = DebugSession(traffic_light_system(), channel_kind="passive",
                               poll_period_us=500)
        session.setup()
        session.engine.breakpoints.add(
            StateEntryBreakpoint("state:lights.lamp.GREEN"))
        session.run(ms(100) * 20)
        assert session.engine.state is EngineState.PAUSED
        session.engine.breakpoints.all()[0].enabled = False
        session.stepper.resume()
        assert not session.kernel.board_of("node0").stalled
        events_before = len(session.trace)
        session.run_for(ms(100) * 20)
        assert len(session.trace) > events_before

    def test_paused_target_freezes_watched_values(self):
        session = DebugSession(blinker_system(), channel_kind="passive",
                               poll_period_us=500)
        session.setup()
        session.engine.breakpoints.add(
            StateEntryBreakpoint("state:blinky.blink.ON"))
        session.run(ms(10) * 20)
        assert session.engine.state is EngineState.PAUSED
        board = session.kernel.board_of("node0")
        frozen = board.symbol_value("blinky.blink.$_state")
        session.run_for(ms(10) * 10)
        # No jobs execute while stalled; the state variable cannot move.
        assert board.symbol_value("blinky.blink.$_state") == frozen
