"""Assembler round-trips, backpatching, and fault-injection mutation.

Also pins the contract between the CPU's two execution paths: the
performance-specialized fast loop and the fully-checked debug loop must be
observationally identical on the same program.
"""

import random

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.comdes.examples import traffic_light_system
from repro.errors import TargetFault
from repro.faults.implementation import IMPL_FAULT_KINDS, inject_implementation_fault
from repro.target.assembler import Assembler, disassemble
from repro.target.board import Board
from repro.target.cpu import Cpu, StopReason
from repro.target.isa import ARG_OPS, Instr, OPCODES
from repro.target.memory import MemoryMap, RAM_BASE
from repro.target.peripherals import Gpio


class TestRoundTrip:
    def test_assemble_disassemble_mentions_every_instruction(self):
        asm = Assembler()
        asm.emit("PUSH", 7, src_path="block:a.b")
        asm.emit("STORE", RAM_BASE)
        asm.label("loop")
        asm.emit("LOAD", RAM_BASE)
        asm.emit_jump("JZ", "loop")
        asm.emit("HALT")
        code = asm.assemble()
        listing = disassemble(code)
        for instr in code:
            assert instr.op in listing
        assert "block:a.b" in listing          # source map survives
        assert str(RAM_BASE & 0xFFF) or True   # addresses render in hex
        assert f"0x{RAM_BASE:08x}" in listing

    def test_listing_window_and_pc_marker(self):
        code = [Instr("PUSH", n) for n in range(10)] + [Instr("HALT")]
        listing = disassemble(code, start=4, count=3, mark_pc=5)
        lines = listing.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("  ") and lines[1].startswith("=>")

    def test_reassembled_listing_executes_identically(self):
        """assemble -> disassemble -> parse -> assemble -> same behaviour."""
        asm = Assembler()
        asm.emit("PUSH", 3)
        asm.emit("PUSH", 4)
        asm.emit("MUL")
        asm.emit("STORE", RAM_BASE)
        asm.emit("HALT")
        code = asm.assemble()
        reparsed = []
        for line in disassemble(code).splitlines():
            fields = line.split(";")[0].split()[1:]  # drop marker and pc
            op = fields[0]
            arg = int(fields[1], 0) if len(fields) > 1 else None
            reparsed.append(Instr(op, arg))
        assert reparsed == code


class TestBackpatching:
    def test_forward_and_backward_targets(self):
        asm = Assembler()
        asm.label("back")
        back_pos = asm.position
        asm.emit("PUSH", 0)
        forward_jump = asm.emit_jump("JZ", "fwd")
        asm.emit_jump("JMP", "back")
        asm.label("fwd")
        fwd_pos = asm.position
        asm.emit("HALT")
        code = asm.assemble()
        assert code[forward_jump].arg == fwd_pos
        assert code[forward_jump + 1].arg == back_pos

    def test_fresh_labels_do_not_collide_with_user_labels(self):
        asm = Assembler()
        asm.label("L_1")  # looks like a fresh label, must not clash
        names = {asm.fresh_label() for _ in range(100)}
        assert len(names) == 100
        assert "L_1" not in names

    def test_position_tracks_pending_jumps(self):
        asm = Assembler()
        asm.emit_jump("JMP", "end")
        assert asm.position == 1
        asm.label("end")
        assert asm.assemble()[0].arg == 1


class TestFaultMutations:
    """Mutated images (swap / PUSH-delta / POP patches) must still execute."""

    @pytest.fixture(scope="class")
    def firmware(self):
        return generate_firmware(traffic_light_system(),
                                 InstrumentationPlan.full())

    @pytest.mark.parametrize("kind", sorted(IMPL_FAULT_KINDS))
    def test_every_mutation_kind_still_executes(self, firmware, kind):
        system = traffic_light_system()
        mutant, fault = inject_implementation_fault(firmware, kind, seed=11)
        if mutant is None:
            pytest.skip(f"{kind} found no applicable site")
        assert fault.category == "implementation"
        try:
            run_firmware_lockstep(system, mutant, rounds=20, board=Board())
        except TargetFault:
            pass  # crashing mutants are legal outcomes; hangs are not

    def test_push_delta_patch_changes_behaviour_observably(self, firmware):
        system = traffic_light_system()
        reference = run_firmware_lockstep(system, firmware, rounds=30,
                                          board=Board())
        diverged = 0
        for seed in range(1, 6):
            mutant, _ = inject_implementation_fault(firmware, "const_corrupt",
                                                    seed)
            try:
                histories = run_firmware_lockstep(system, mutant, rounds=30,
                                                  board=Board())
            except TargetFault:
                diverged += 1
                continue
            diverged += histories != reference
        assert diverged > 0  # corrupting constants is not a no-op


def _random_program(rng, length=60):
    """A random well-formed straight-line-with-branches program."""
    asm = Assembler()
    asm.emit("PUSH", rng.randrange(-50, 50))  # seed the stack
    for index in range(length):
        choice = rng.random()
        if choice < 0.35:
            asm.emit("PUSH", rng.randrange(-1000, 1000))
        elif choice < 0.55:
            asm.emit("DUP")
            asm.emit(rng.choice(("ADD", "SUB", "MUL", "MIN", "MAX",
                                 "AND", "OR", "EQ", "NE", "LT", "GE")))
        elif choice < 0.7:
            asm.emit("LOAD", RAM_BASE + rng.randrange(8))
        elif choice < 0.85:
            asm.emit("STORE", RAM_BASE + rng.randrange(8))
            asm.emit("PUSH", rng.randrange(100))
        else:
            skip = asm.fresh_label()
            asm.emit("DUP")
            asm.emit_jump("JZ", skip)
            asm.emit("NEG")
            asm.label(skip)
    asm.emit("STORE", RAM_BASE + 8)
    asm.emit("HALT")
    return asm.assemble()


class TestFastAndDebugPathsAgree:
    """One semantics, two loops: the specialization must be unobservable."""

    def test_random_programs_identical_outcomes(self):
        rng = random.Random(1234)
        for _ in range(25):
            code = _random_program(rng)

            fast_memory = MemoryMap(64)
            fast_cpu = Cpu(fast_memory, Gpio())
            fast_cpu.load(code)
            fast_cpu.reset_task(0)
            fast = fast_cpu.run()

            debug_memory = MemoryMap(64)
            debug_cpu = Cpu(debug_memory, Gpio())
            debug_cpu.load(code)
            debug_cpu.reset_task(0)
            writes = []
            debug_memory.set_write_hook(lambda a, v: writes.append((a, v)))
            debug = debug_cpu.run()

            assert fast.reason is debug.reason is StopReason.HALTED
            assert fast.instructions == debug.instructions
            assert fast.cycles == debug.cycles
            assert fast_memory.cells == debug_memory.cells
            assert fast_cpu.stack == debug_cpu.stack

    def test_traps_agree_between_paths(self):
        for code in ([Instr("ADD"), Instr("HALT")],
                     [Instr("JMP", 99)],
                     [Instr("PUSH", 1), Instr("PUSH", 0), Instr("DIV")],
                     [Instr("LOAD", 1234)]):
            outcomes = []
            for hooked in (False, True):
                memory = MemoryMap(16)
                cpu = Cpu(memory, Gpio())
                if hooked:
                    memory.set_write_hook(lambda a, v: None)
                cpu.load(code)
                cpu.reset_task(0)
                with pytest.raises(TargetFault) as caught:
                    cpu.run()
                outcomes.append(caught.value.pc)
            assert outcomes[0] == outcomes[1]


class TestIsaTotality:
    def test_every_opcode_is_executable(self):
        """No opcode is decode-only: each runs on both paths."""
        seen = set()
        asm = Assembler()
        # exercise everything except EMIT/HALT in a straight line
        for op in ("ADD", "SUB", "MUL", "DIV", "MOD", "MIN", "MAX",
                   "AND", "OR", "EQ", "NE", "LT", "LE", "GT", "GE"):
            asm.emit("PUSH", 9); asm.emit("PUSH", 2)
            asm.emit(op); asm.emit("POP")
            seen |= {"PUSH", op, "POP"}
        asm.emit("PUSH", 1); asm.emit("NOT"); asm.emit("NEG")
        seen |= {"NOT", "NEG"}
        asm.emit("PUSH", 5); asm.emit("SWAP"); asm.emit("DUP"); asm.emit("POP")
        seen |= {"SWAP", "DUP"}
        asm.emit("STORE", RAM_BASE); asm.emit("POP"); seen |= {"STORE"}
        asm.emit("PUSH", 77); asm.emit("PUSH", RAM_BASE + 1); asm.emit("STI")
        asm.emit("PUSH", RAM_BASE + 1); asm.emit("LDI"); seen |= {"STI", "LDI"}
        asm.emit("LOAD", RAM_BASE); seen |= {"LOAD"}
        asm.emit_jump("JZ", "over"); asm.emit_jump("JMP", "over")
        asm.label("over"); seen |= {"JZ", "JMP"}
        asm.emit("PUSH", 1); asm.emit_jump("JNZ", "end"); seen |= {"JNZ"}
        asm.label("end")
        asm.emit("PUSH", 3); asm.emit("PUSH", 4); asm.emit("EMIT", 1)
        asm.emit("HALT"); seen |= {"EMIT", "HALT"}
        assert seen == set(OPCODES)

        code = asm.assemble()
        for hooked in (False, True):
            memory = MemoryMap(16)
            cpu = Cpu(memory, Gpio())
            if hooked:
                memory.set_write_hook(lambda a, v: None)
            cpu.load(code)
            cpu.reset_task(0)
            result = cpu.run()
            assert result.reason is StopReason.HALTED
            assert cpu.emit_log == [(1, 3, 4)]
            assert memory.peek(RAM_BASE + 1) == 77

    def test_arg_declaration_is_consistent(self):
        for op in OPCODES:
            if op in ARG_OPS:
                Instr(op, 0)
            else:
                Instr(op)
