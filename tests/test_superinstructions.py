"""Lockstep proof that superinstruction fusion is observably invisible.

``Cpu.load`` fuses the codegen's regular sequences into single decoded
rows; the contract (ISA doc, ``repro/target/__init__.py``) is that fused
execution is **bit-identical** to unfused execution at every stop:
``pc``, ``cycles``, ``instructions``, stack, RAM, ``emit_log``,
read/write counters and fault pcs — including budget stops landing
mid-sequence and breakpoints armed over fused regions (which route to
the per-instruction ``_run_debug`` loop). Randomized programs are
codegen-shaped: operand/operand/alu/store quads, constant and move
pairs, compare-and-branch, bounded loops, EMITs and unfusable filler.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.errors import TargetFault
from repro.target.assembler import Assembler
from repro.target.board import Board
from repro.target.cpu import Cpu, StopReason
from repro.target.isa import Instr
from repro.target.memory import RAM_BASE, MemoryMap
from repro.util.intmath import INT_MAX, INT_MIN

RAM_WORDS = 12
STACK_DEPTH = 16
RUN_LIMIT = 50_000

ALU_OPS = ("ADD", "SUB", "MUL", "EQ", "NE", "LT", "LE", "GT", "GE",
           "MIN", "MAX", "AND", "OR", "DIV", "MOD")


def build(code, fuse, entries=None, ram=RAM_WORDS, depth=STACK_DEPTH):
    cpu = Cpu(MemoryMap(ram), stack_depth=depth, fuse=fuse)
    cpu.load(code, entries=entries)
    cpu.reset_task(0)
    return cpu


def snap(cpu):
    """Every architecturally observable piece of machine state."""
    memory = cpu.memory
    return {
        "pc": cpu.pc, "cycles": cpu.cycles, "instr": cpu.instructions,
        "stack": list(cpu.stack), "ram": list(memory.cells),
        "emit": list(cpu.emit_log), "halted": cpu.halted,
        "reads": memory.reads, "writes": memory.writes,
    }


def run_guarded(cpu, limit=RUN_LIMIT):
    """Run to a stop; faults become part of the observable outcome."""
    try:
        result = cpu.run(max_instructions=limit)
        return (result.reason, None)
    except TargetFault as fault:
        return ("fault", (fault.reason, fault.pc))


# -- program generator ------------------------------------------------------

addr_ix = st.integers(0, RAM_WORDS - 1)
imm = st.one_of(
    st.integers(-40, 40),
    st.sampled_from([INT_MIN, INT_MAX, INT_MIN + 1, INT_MAX - 1, 0, 1, -1]),
)
nonzero_imm = imm.filter(lambda v: v != 0)
operand = st.tuples(st.booleans(), addr_ix, imm)  # (is_load, addr, imm)

snip_alu_store = st.tuples(st.just("alu_store"), operand, operand,
                           st.sampled_from(ALU_OPS), addr_ix, nonzero_imm)
snip_const_store = st.tuples(st.just("const_store"), imm, addr_ix)
snip_move = st.tuples(st.just("move"), addr_ix, addr_ix)
snip_cmp_branch = st.tuples(st.just("cmp_branch"), operand, operand,
                            st.sampled_from(("EQ", "NE", "LT", "LE", "GT",
                                             "GE", "AND", "OR")),
                            st.booleans(), imm, addr_ix)
snip_load_branch = st.tuples(st.just("load_branch"), addr_ix, st.booleans(),
                             imm, addr_ix)
# the accumulator cell is drawn as a nonzero offset from the counter so
# the two never collide (a shared cell would make the loop immortal)
snip_loop = st.tuples(st.just("loop"), st.integers(1, 5), addr_ix,
                      st.integers(1, RAM_WORDS - 1))
snip_emit = st.tuples(st.just("emit"), st.integers(1, 5), operand,
                      st.integers(1, 6))
snip_plain = st.tuples(st.just("plain"), addr_ix, addr_ix)

snippets = st.lists(
    st.one_of(snip_alu_store, snip_const_store, snip_move, snip_cmp_branch,
              snip_load_branch, snip_loop, snip_emit, snip_plain),
    min_size=1, max_size=8,
)


def emit_operand(asm, opnd, nonzero_fallback=None):
    is_load, ix, value = opnd
    if is_load and nonzero_fallback is None:
        asm.emit("LOAD", RAM_BASE + ix)
    else:
        if nonzero_fallback is not None:
            value = nonzero_fallback
        asm.emit("PUSH", value)


def assemble_program(snips):
    """Lower a snippet list to codegen-shaped stack code ending in HALT."""
    asm = Assembler()
    for snip in snips:
        kind = snip[0]
        if kind == "alu_store":
            _, a, b, alu, y, safe = snip
            emit_operand(asm, a)
            # divides get a guaranteed-nonzero immediate divisor here;
            # zero-divisor fault parity has its own deterministic tests
            emit_operand(asm, b,
                         nonzero_fallback=safe if alu in ("DIV", "MOD")
                         else None)
            asm.emit(alu)
            asm.emit("STORE", RAM_BASE + y)
        elif kind == "const_store":
            _, value, y = snip
            asm.emit("PUSH", value)
            asm.emit("STORE", RAM_BASE + y)
        elif kind == "move":
            _, a, y = snip
            asm.emit("LOAD", RAM_BASE + a)
            asm.emit("STORE", RAM_BASE + y)
        elif kind == "cmp_branch":
            _, a, b, cmp, on_zero, value, y = snip
            skip = asm.fresh_label("skip")
            emit_operand(asm, a)
            emit_operand(asm, b)
            asm.emit(cmp)
            asm.emit_jump("JZ" if on_zero else "JNZ", skip)
            asm.emit("PUSH", value)
            asm.emit("STORE", RAM_BASE + y)
            asm.label(skip)
        elif kind == "load_branch":
            _, a, on_zero, value, y = snip
            skip = asm.fresh_label("skip")
            asm.emit("LOAD", RAM_BASE + a)
            asm.emit_jump("JZ" if on_zero else "JNZ", skip)
            asm.emit("PUSH", value)
            asm.emit("STORE", RAM_BASE + y)
            asm.label(skip)
        elif kind == "loop":
            _, count, counter, y_offset = snip
            y = (counter + y_offset) % RAM_WORDS
            top = asm.fresh_label("top")
            asm.emit("PUSH", count)
            asm.emit("STORE", RAM_BASE + counter)
            asm.label(top)
            asm.emit("LOAD", RAM_BASE + y)
            asm.emit("PUSH", 1)
            asm.emit("ADD")
            asm.emit("STORE", RAM_BASE + y)
            asm.emit("LOAD", RAM_BASE + counter)
            asm.emit("PUSH", 1)
            asm.emit("SUB")
            asm.emit("STORE", RAM_BASE + counter)
            asm.emit("LOAD", RAM_BASE + counter)
            asm.emit_jump("JNZ", top)
        elif kind == "emit":
            _, path_id, value, cmd_kind = snip
            asm.emit("PUSH", path_id)
            emit_operand(asm, value)
            asm.emit("EMIT", cmd_kind)
        else:  # plain, unfusable filler
            _, a, y = snip
            asm.emit("LOAD", RAM_BASE + a)
            asm.emit("NOT")
            asm.emit("DUP")
            asm.emit("POP")
            asm.emit("STORE", RAM_BASE + y)
    asm.emit("HALT")
    return asm.assemble()


# -- lockstep properties -----------------------------------------------------

class TestLockstepProperties:
    @settings(max_examples=60, deadline=None)
    @given(snips=snippets)
    def test_fused_equals_unfused_to_halt(self, snips):
        code = assemble_program(snips)
        fused = build(code, fuse=True)
        plain = build(code, fuse=False)
        outcome_f = run_guarded(fused)
        outcome_p = run_guarded(plain)
        assert outcome_f == outcome_p
        assert snap(fused) == snap(plain)

    @settings(max_examples=40, deadline=None)
    @given(snips=snippets,
           chunks=st.lists(st.integers(1, 7), min_size=1, max_size=24))
    def test_budget_stops_mid_sequence_are_identical(self, snips, chunks):
        """LIMIT landing anywhere — including inside a fused quad — must
        decompose to a legal unfused pc with identical counters, and
        resuming from that pc must stay in lockstep."""
        code = assemble_program(snips)
        fused = build(code, fuse=True)
        plain = build(code, fuse=False)
        for chunk in chunks:
            outcome_f = run_guarded(fused, limit=chunk)
            outcome_p = run_guarded(plain, limit=chunk)
            assert outcome_f == outcome_p
            assert snap(fused) == snap(plain)
            if fused.halted or outcome_f[0] == "fault":
                return
        assert run_guarded(fused) == run_guarded(plain)
        assert snap(fused) == snap(plain)

    @settings(max_examples=40, deadline=None)
    @given(snips=snippets, data=st.data())
    def test_debug_loop_breakpoint_stops_match_fast_path(self, snips, data):
        """The per-instruction debug loop (breakpoints armed at random
        pcs, possibly mid-fusion) and the fused fast path observe the
        same machine at every stop."""
        code = assemble_program(snips)
        debug = build(code, fuse=True)
        fast = build(code, fuse=True)
        pcs = data.draw(st.lists(st.integers(0, len(code) - 1),
                                 min_size=1, max_size=4, unique=True))
        debug.breakpoints.update(pcs)
        executed = 0
        while executed <= RUN_LIMIT:
            result = debug.run(max_instructions=RUN_LIMIT,
                               break_on_breakpoints=True)
            executed += result.instructions
            if result.instructions:
                fast.run(max_instructions=result.instructions)
            assert snap(fast) == snap(debug)
            if debug.halted:
                break
        assert debug.halted

    @settings(max_examples=25, deadline=None)
    @given(snips=snippets)
    def test_single_step_matches_fused_one_instruction_budgets(self, snips):
        """Single-stepping the debug loop == fused runs of budget 1 (every
        fused row decomposes), at every architectural stop."""
        code = assemble_program(snips)
        stepper = build(code, fuse=True)
        fused = build(code, fuse=True)
        for _ in range(RUN_LIMIT):
            step = run_guarded_step(stepper)
            one = run_guarded(fused, limit=1)
            assert step == one or (step[0] is StopReason.STEP
                                   and one[0] is StopReason.LIMIT)
            assert snap(stepper) == snap(fused)
            if stepper.halted or step[0] == "fault":
                break


def run_guarded_step(cpu):
    try:
        result = cpu.run(max_instructions=1, single_step=True)
        return (result.reason, None)
    except TargetFault as fault:
        return ("fault", (fault.reason, fault.pc))


# -- deterministic edges ----------------------------------------------------

def counting_loop(iterations):
    asm = Assembler()
    asm.label("top")
    asm.emit("LOAD", RAM_BASE)
    asm.emit("PUSH", 1)
    asm.emit("ADD")
    asm.emit("STORE", RAM_BASE)
    asm.emit("LOAD", RAM_BASE)
    asm.emit("PUSH", iterations)
    asm.emit("LT")
    asm.emit_jump("JNZ", "top")
    asm.emit("HALT")
    return asm.assemble()


class TestFusionPass:
    def test_counting_loop_fuses_to_two_rows(self):
        cpu = build(counting_loop(10), fuse=True)
        assert cpu.fused_rows == 2

    def test_fuse_off_installs_nothing(self):
        cpu = build(counting_loop(10), fuse=False)
        assert cpu.fused_rows == 0 and cpu._frows is None

    def test_no_fusion_spans_a_jump_target(self):
        # JMP 4 lands *inside* what would otherwise be the second pair:
        # only the first PUSH/STORE pair may fuse.
        code = [Instr("PUSH", 1), Instr("STORE", RAM_BASE),
                Instr("JMP", 4), Instr("PUSH", 9),
                Instr("STORE", RAM_BASE + 1), Instr("HALT")]
        cpu = build(code, fuse=True)
        assert cpu.fused_rows == 1
        assert cpu._frows[3] == cpu._rows[3]  # pair at 3/4 stayed plain

    def test_fusing_at_a_jump_target_is_allowed(self):
        cpu = build(counting_loop(10), fuse=True)
        assert cpu._frows[0] != cpu._rows[0]  # loop head fused

    def test_no_fusion_spans_a_task_entry(self):
        code = [Instr("LOAD", RAM_BASE), Instr("LOAD", RAM_BASE + 1),
                Instr("ADD"), Instr("STORE", RAM_BASE + 2), Instr("HALT")]
        assert build(code, fuse=True).fused_rows == 1
        assert build(code, fuse=True, entries=[2]).fused_rows == 0

    def test_undeclared_entry_mid_sequence_executes_plain_rows(self):
        code = [Instr("LOAD", RAM_BASE), Instr("LOAD", RAM_BASE + 1),
                Instr("ADD"), Instr("STORE", RAM_BASE + 2), Instr("HALT")]
        fused = build(code, fuse=True)
        fused.memory.poke(RAM_BASE + 1, 7)
        fused.reset_task(2)        # interior pc of the fused quad
        plain = build(code, fuse=False)
        plain.memory.poke(RAM_BASE + 1, 7)
        plain.reset_task(2)
        # both underflow identically: ADD with an empty stack
        assert run_guarded(fused) == run_guarded(plain)
        assert snap(fused) == snap(plain)

    def test_invalid_branch_target_is_not_fused(self):
        code = [Instr("LOAD", RAM_BASE), Instr("JNZ", 99), Instr("HALT")]
        assert build(code, fuse=True).fused_rows == 0

    def test_emit_triple_fuses_both_value_modes(self):
        # PUSH ch; PUSH v; EMIT and PUSH ch; LOAD v; EMIT each collapse
        # to one command-preamble row
        code = [Instr("PUSH", 1), Instr("PUSH", 9), Instr("EMIT", 2),
                Instr("PUSH", 3), Instr("LOAD", RAM_BASE), Instr("EMIT", 4),
                Instr("HALT")]
        fused, plain = build(code, fuse=True), build(code, fuse=False)
        assert fused.fused_rows == 2
        assert run_guarded(fused) == run_guarded(plain)
        assert snap(fused) == snap(plain)
        assert fused.emit_log == [(2, 1, 9), (4, 3, 0)]

    def test_emit_triple_does_not_span_a_branch_target(self):
        # JMP 2 lands on the LOAD inside the would-be triple
        code = [Instr("JMP", 2), Instr("PUSH", 1), Instr("LOAD", RAM_BASE),
                Instr("EMIT", 2), Instr("HALT")]
        cpu = build(code, fuse=True)
        assert cpu.fused_rows == 0
        assert cpu._frows is None or cpu._frows[1] == cpu._rows[1]
        fused, plain = build(code, fuse=True), build(code, fuse=False)
        assert run_guarded(fused) == run_guarded(plain)
        assert snap(fused) == snap(plain)


class TestDecomposeEdges:
    def test_divide_by_zero_fault_is_identical(self):
        code = [Instr("LOAD", RAM_BASE), Instr("PUSH", 0), Instr("DIV"),
                Instr("STORE", RAM_BASE + 1), Instr("HALT")]
        fused, plain = build(code, fuse=True), build(code, fuse=False)
        assert fused.fused_rows == 1
        outcome = run_guarded(fused)
        assert outcome == run_guarded(plain)
        assert outcome == ("fault", ("division by zero", 2))
        assert snap(fused) == snap(plain)

    def test_transient_stack_overflow_is_identical(self):
        code = [Instr("PUSH", 7), Instr("LOAD", RAM_BASE),
                Instr("LOAD", RAM_BASE + 1), Instr("ADD"),
                Instr("STORE", RAM_BASE + 2), Instr("HALT")]
        fused = build(code, fuse=True, depth=2)
        plain = build(code, fuse=False, depth=2)
        assert fused.fused_rows == 1
        outcome = run_guarded(fused)
        assert outcome == run_guarded(plain)
        assert outcome == ("fault", ("stack overflow", 2))
        assert snap(fused) == snap(plain)

    def test_store_outside_ram_fault_is_identical(self):
        code = [Instr("LOAD", RAM_BASE), Instr("PUSH", 1), Instr("ADD"),
                Instr("STORE", RAM_BASE - 1), Instr("HALT")]
        fused, plain = build(code, fuse=True), build(code, fuse=False)
        assert fused.fused_rows == 1
        outcome = run_guarded(fused)
        assert outcome == run_guarded(plain)
        assert outcome[0] == "fault" and outcome[1][1] == 3
        assert snap(fused) == snap(plain)

    def test_limit_mid_quad_stops_on_legal_unfused_pc(self):
        code = counting_loop(10)
        for limit in range(1, 12):
            fused, plain = build(code, fuse=True), build(code, fuse=False)
            fused.run(max_instructions=limit)
            plain.run(max_instructions=limit)
            assert snap(fused) == snap(plain)
            assert 0 <= fused.pc < len(code)
            # and resuming completes in lockstep
            fused.run()
            plain.run()
            assert snap(fused) == snap(plain)

    def test_emit_triple_budget_decompose(self):
        # LIMIT landing on either interior instruction of the command
        # preamble must decompose to a legal unfused pc and resume clean
        code = [Instr("PUSH", 1), Instr("PUSH", 9), Instr("EMIT", 2),
                Instr("HALT")]
        for limit in range(1, 5):
            fused, plain = build(code, fuse=True), build(code, fuse=False)
            assert fused.fused_rows == 1
            fused.run(max_instructions=limit)
            plain.run(max_instructions=limit)
            assert snap(fused) == snap(plain)
            fused.run()
            plain.run()
            assert snap(fused) == snap(plain)

    def test_emit_triple_transient_overflow_decompose(self):
        # depth 1: the preamble's two pushes cannot both fit, so the
        # fused row must decompose and fault exactly like the plain pair
        code = [Instr("PUSH", 1), Instr("PUSH", 9), Instr("EMIT", 2),
                Instr("HALT")]
        fused = build(code, fuse=True, depth=1)
        plain = build(code, fuse=False, depth=1)
        assert fused.fused_rows == 1
        outcome = run_guarded(fused)
        assert outcome == run_guarded(plain)
        assert outcome == ("fault", ("stack overflow", 1))
        assert snap(fused) == snap(plain)

    def test_emit_handler_observes_identical_cycles(self):
        asm = Assembler()
        asm.emit("PUSH", 3)          # fused pair feeding the emit value
        asm.emit("STORE", RAM_BASE)
        asm.emit("PUSH", 1)          # path id
        asm.emit("LOAD", RAM_BASE)
        asm.emit("EMIT", 2)
        asm.emit("HALT")
        code = asm.assemble()
        seen = {}
        for fuse in (True, False):
            cpu = build(code, fuse=fuse)
            observed = []
            cpu.emit_handler = lambda kind, pid, value: observed.append(
                (kind, pid, value, cpu.cycles))
            cpu.run()
            seen[fuse] = observed
        assert seen[True] == seen[False]


class TestFirmwareIntegration:
    def test_generated_firmware_fuses_and_stays_bit_identical(self):
        """The real codegen output: fused board == unfused board on every
        task job, cycle for cycle."""
        firmware = generate_firmware(traffic_light_system(),
                                     InstrumentationPlan.full())
        fused_board = Board()
        plain_board = Board()
        plain_board.cpu.fuse = False
        fused_board.load_firmware(firmware)
        plain_board.load_firmware(firmware)
        assert fused_board.cpu.fused_rows > 0
        assert plain_board.cpu.fused_rows == 0
        for _ in range(25):
            for task in firmware.entries:
                rf = fused_board.run_task(task)
                rp = plain_board.run_task(task)
                assert rf == rp
                assert snap(fused_board.cpu) == snap(plain_board.cpu)

    def test_fuse_toggle_after_load_selects_reference_loop(self):
        """Board exposes no fuse parameter, so disabling fusion after
        load_firmware must be honored — run() re-consults the flag."""
        cpu = build(counting_loop(5), fuse=True)
        assert cpu.fused_rows > 0
        cpu.fuse = False
        cpu._run_fused = lambda limit: pytest.fail(
            "fused loop must not run with fuse disabled")
        result = cpu.run()
        assert result.reason is StopReason.HALTED

    def test_run_route_selection_unchanged(self):
        """Debug features still force the per-instruction loop; the fused
        loop only ever runs hook-free."""
        cpu = build(counting_loop(3), fuse=True)
        cpu.breakpoints.add(1)
        result = cpu.run(break_on_breakpoints=True)
        assert result.reason is StopReason.BREAKPOINT
        assert cpu.pc == 1
