"""Tests for the DTM kernel, scheduler, bus and jitter instrumentation."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import blinker_system, cruise_control_system
from repro.errors import SchedulerError
from repro.rtos.jitter import JitterMeter
from repro.rtos.kernel import DtmKernel
from repro.rtos.network import SignalBus
from repro.rtos.scheduler import NodeScheduler
from repro.rtos.task import ActiveJob, JobRecord, LoadTask
from repro.sim.kernel import Simulator
from repro.util.timeunits import ms


def cruise_kernel(latched=True, net_delay_us=100, loads=()):
    system = cruise_control_system()
    firmware = generate_firmware(system, InstrumentationPlan.none())
    kernel = DtmKernel(system, firmware, latched=latched,
                       net_delay_us=net_delay_us)
    for load in loads:
        kernel.add_load_task(load)
    return system, kernel


class TestScheduler:
    def test_priority_preemption(self):
        sim = Simulator()
        scheduler = NodeScheduler(sim, "n")
        done = []
        def release(name, priority, demand):
            job = ActiveJob(name, priority, sim.now, sim.now + 10_000, demand,
                            on_complete=lambda t, n=name: done.append((n, t)))
            scheduler.release(job)
        sim.schedule_at(0, release, "low", 5, 100)
        sim.schedule_at(10, release, "high", 1, 20)
        sim.run()
        # High preempts at t=10, finishes at 30; low resumes, finishes at 120.
        assert done == [("high", 30), ("low", 120)]
        assert scheduler.preemptions >= 1

    def test_fifo_among_equal_priorities(self):
        sim = Simulator()
        scheduler = NodeScheduler(sim, "n")
        done = []
        def release(name):
            job = ActiveJob(name, 1, sim.now, sim.now + 1000, 10,
                            on_complete=lambda t, n=name: done.append(n))
            scheduler.release(job)
        sim.schedule_at(0, release, "first")
        sim.schedule_at(0, release, "second")
        sim.run()
        assert done == ["first", "second"]

    def test_zero_demand_job_completes_immediately(self):
        sim = Simulator()
        scheduler = NodeScheduler(sim, "n")
        done = []
        sim.schedule_at(5, lambda: scheduler.release(
            ActiveJob("instant", 1, 5, 100, 0,
                      on_complete=lambda t: done.append(t))))
        sim.run()
        assert done == [5]

    def test_release_time_mismatch_rejected(self):
        sim = Simulator()
        scheduler = NodeScheduler(sim, "n")
        with pytest.raises(SchedulerError):
            scheduler.release(ActiveJob("bad", 1, 999, 1999, 10))

    def test_negative_demand_rejected(self):
        with pytest.raises(SchedulerError):
            ActiveJob("bad", 1, 0, 100, -5)


class TestSignalBus:
    def test_same_node_sees_value_immediately(self):
        sim = Simulator()
        bus = SignalBus(sim, ["n0", "n1"], {"s": 0}, net_delay_us=100)
        bus.publish("n0", "s", 7)
        assert bus.read("n0", "s") == 7
        assert bus.read("n1", "s") == 0   # still in flight

    def test_remote_node_sees_value_after_delay(self):
        sim = Simulator()
        bus = SignalBus(sim, ["n0", "n1"], {"s": 0}, net_delay_us=100)
        bus.publish("n0", "s", 7)
        sim.run_until(99)
        assert bus.read("n1", "s") == 0
        sim.run_until(100)
        assert bus.read("n1", "s") == 7

    def test_zero_delay_is_synchronous(self):
        bus = SignalBus(Simulator(), ["n0", "n1"], {"s": 0}, net_delay_us=0)
        bus.publish("n0", "s", 3)
        assert bus.read("n1", "s") == 3

    def test_unknown_node_or_signal_rejected(self):
        bus = SignalBus(Simulator(), ["n0"], {"s": 0})
        with pytest.raises(Exception):
            bus.read("nX", "s")
        with pytest.raises(Exception):
            bus.publish("nX", "s", 1)

    def test_cross_node_message_counter(self):
        sim = Simulator()
        bus = SignalBus(sim, ["n0", "n1", "n2"], {"s": 0})
        bus.publish("n0", "s", 1)
        assert bus.messages_sent == 1
        assert bus.cross_node_messages == 2


class TestDtmKernel:
    def test_jobs_execute_at_period(self):
        system = blinker_system(period_us=ms(10))
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware)
        kernel.run(ms(10) * 10)
        records = kernel.records_for("blinky")
        assert len(records) == 10
        assert [r.release for r in records] == [ms(10) * i for i in range(10)]

    def test_dtm_output_matches_lockstep_reference(self):
        # With deadline == period and latched outputs, the DTM execution is
        # the timed version of the synchronous reference semantics.
        system, kernel = cruise_kernel(latched=True)
        rounds = 50
        kernel.run(ms(20) * rounds + 1)
        reference = cruise_control_system().lockstep_run(rounds)
        assert kernel.signal_value("node0", "mode") == reference[-1]["mode"]

    def test_latched_outputs_publish_exactly_at_deadline(self):
        system, kernel = cruise_kernel(latched=True)
        kernel.run(ms(20) * 30)
        for phase in kernel.jitter.phases("speed", skip=1):
            assert phase == system.actor("plant").task.deadline_us

    def test_latched_jitter_is_zero_under_load(self):
        load = LoadTask("noise", "node1", period_us=3000, demand_us=700,
                        priority=0)
        _, kernel = cruise_kernel(latched=True, loads=[load])
        kernel.run(ms(20) * 50)
        assert kernel.jitter.jitter_us("speed", skip=2) == 0

    def test_unlatched_jitter_appears_under_load(self):
        load = LoadTask("noise", "node1", period_us=3000, demand_us=700,
                        priority=0)
        _, kernel = cruise_kernel(latched=False, loads=[load])
        kernel.run(ms(20) * 50)
        assert kernel.jitter.jitter_us("speed", skip=2) > 0

    def test_stalled_board_skips_jobs(self):
        system = blinker_system(period_us=ms(10))
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware)
        kernel.board_of("node0").stalled = True
        kernel.run(ms(10) * 5)
        # Releases at 0, 10, ..., 50ms inclusive: six skipped jobs.
        assert kernel.jobs_skipped == 6
        assert all(r.skipped for r in kernel.records_for("blinky"))

    def test_deadline_misses_counted(self):
        # A hog with higher priority starves the blinker past its deadline.
        system = blinker_system(period_us=ms(10))
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware)
        # The hog leaves less than the blinker's demand before each deadline.
        kernel.add_load_task(LoadTask("hog", "node0", period_us=ms(10),
                                      demand_us=ms(10) - 1, priority=0))
        kernel.run(ms(10) * 10)
        assert kernel.deadline_misses > 0

    def test_double_start_rejected(self):
        _, kernel = cruise_kernel()
        kernel.start()
        with pytest.raises(SchedulerError):
            kernel.start()

    def test_unknown_node_queries_rejected(self):
        _, kernel = cruise_kernel()
        with pytest.raises(SchedulerError):
            kernel.board_of("mars")


class TestJitterMeter:
    def test_phases_and_jitter(self):
        meter = JitterMeter()
        meter.record("s", 0, 100)
        meter.record("s", 1000, 1100)
        meter.record("s", 2000, 2150)
        assert meter.phases("s") == [100, 100, 150]
        assert meter.jitter_us("s") == 50
        assert meter.mean_phase_us("s") == pytest.approx(116.7, abs=0.1)

    def test_skip_discards_warmup(self):
        meter = JitterMeter()
        meter.record("s", 0, 999)     # warm-up outlier
        meter.record("s", 1000, 1100)
        meter.record("s", 2000, 2100)
        assert meter.jitter_us("s", skip=1) == 0

    def test_insufficient_samples_return_none(self):
        meter = JitterMeter()
        assert meter.jitter_us("s") is None
        meter.record("s", 0, 10)
        assert meter.jitter_us("s") is None

    def test_inter_publication_jitter(self):
        meter = JitterMeter()
        for k, pub in enumerate((100, 1100, 2100, 3200)):
            meter.record("s", k * 1000, pub)
        assert meter.inter_publication_jitter_us("s") == 100


class TestJobRecord:
    def test_miss_detection(self):
        record = JobRecord("a", 0, release=0, completion=150,
                           deadline_abs=100, demand_us=150)
        assert record.missed
        assert record.response_us == 150

    def test_skipped_record(self):
        record = JobRecord("a", 0, release=0, completion=None,
                           deadline_abs=100, demand_us=0, skipped=True)
        assert record.skipped and not record.missed
        assert record.response_us is None

    def test_load_task_validation(self):
        with pytest.raises(SchedulerError):
            LoadTask("x", "n", period_us=100, demand_us=200, priority=1)
