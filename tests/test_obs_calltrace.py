"""The pc-profile hook and flame-style calltrace aggregation.

Grounding: ``Cpu.run(pc_profile={})`` counts every retired instruction
by address on the checked interpreter loop — the per-pc sibling of the
opcode ``profile`` hook, with the same contract (measurement path only;
the fast loop never sees it, and totals agree with the architectural
instruction counter). ``repro.obs.calltrace`` folds those counts
through the firmware source map into collapsed-stack flame frames, and
aggregates tracedb stores by emit site the same way.
"""

import pytest

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.obs.calltrace import (
    PRELUDE,
    flame_lines,
    pc_rollup,
    profile_activation,
    store_rollup,
    task_of_pc,
)
from repro.rtos.kernel import DtmKernel
from repro.target.board import Board
from repro.target.cpu import Cpu
from repro.target.memory import MemoryMap
from repro.tracedb import TraceStore
from repro.util.timeunits import ms


@pytest.fixture(scope="module")
def firmware():
    return generate_firmware(traffic_light_system(),
                             InstrumentationPlan.full())


@pytest.fixture()
def board(firmware):
    board = Board()
    board.load_firmware(firmware)
    return board


class TestPcProfile:
    def test_counts_match_architectural_instruction_counter(self, firmware,
                                                            board):
        cpu = board.cpu
        before = cpu.instructions
        counts: dict = {}
        task = next(iter(firmware.entries))
        cpu.reset_task(firmware.entry_of(task))
        cpu.run(pc_profile=counts)
        assert sum(counts.values()) == cpu.instructions - before
        assert all(0 <= pc < len(firmware.code) for pc in counts)

    def test_profile_and_pc_profile_agree(self, firmware, board):
        cpu = board.cpu
        task = next(iter(firmware.entries))
        opcode_counts: dict = {}
        pc_counts: dict = {}
        cpu.reset_task(firmware.entry_of(task))
        cpu.run(profile=opcode_counts, pc_profile=pc_counts)
        assert sum(opcode_counts.values()) == sum(pc_counts.values())

    def test_no_profile_no_dict_mutation(self):
        cpu = Cpu(MemoryMap(8))
        from repro.target.assembler import Assembler
        asm = Assembler()
        asm.emit("PUSH", 1)
        asm.emit("POP")
        asm.emit("HALT")
        cpu.load(asm.assemble())
        cpu.reset_task(0)
        cpu.run()  # the default path takes no pc_profile at all
        assert cpu.halted


class TestTaskOfPc:
    def test_maps_entries_and_prelude(self, firmware):
        entries = sorted(firmware.entries.items(), key=lambda kv: kv[1])
        for task, entry in entries:
            assert task_of_pc(firmware, entry) == task
        first_entry = entries[0][1]
        if first_entry > 0:
            assert task_of_pc(firmware, 0) == PRELUDE
        # a pc inside the last task's body still books to it
        assert task_of_pc(firmware, len(firmware.code) - 1) == entries[-1][0]


class TestRollups:
    def test_profile_activation_frames(self, firmware, board):
        task = next(iter(firmware.entries))
        rollup = profile_activation(board.cpu, firmware, task)
        assert rollup
        assert sum(count for _, count in rollup) > 0
        for (frame_task, element, pc_label), count in rollup:
            assert frame_task == task
            assert pc_label.startswith("pc:")
            assert count > 0
        # src_path attribution survives into the middle frame
        elements = {element for (_, element, _), _ in rollup}
        assert any(e != "<anon>" for e in elements)

    def test_pc_rollup_is_deterministic_and_sorted(self, firmware):
        counts = {3: 2, 1: 5, 3 + 0: 1}
        a = pc_rollup(firmware, counts)
        b = pc_rollup(firmware, dict(reversed(list(counts.items()))))
        assert a == b == sorted(a)

    def test_flame_lines_format(self):
        lines = flame_lines([(("t", "e", "pc:1"), 2),
                             (("a", "b", "pc:0"), 7)])
        assert lines == ["a;b;pc:0 7", "t;e;pc:1 2"]


class TestStoreRollup:
    def test_kernel_spill_rollup(self, firmware, tmp_path):
        store = TraceStore(str(tmp_path / "jobs"), segment_events=16)
        kernel = DtmKernel(traffic_light_system(), firmware,
                           record_capacity=8, record_spill=store)
        kernel.run(ms(500))
        store.flush()
        rollup = store_rollup(store)
        frames = dict(rollup)
        actors = {frame[2] for frame in frames}
        assert actors == set(traffic_light_system().actors)
        assert all(frame[0] == "session" and frame[1] == "activation"
                   for frame in frames)
        # weighting by demand_us re-weights, same frames
        weighted = dict(store_rollup(store, weight_key="demand_us"))
        assert set(weighted) == set(frames)
        assert sum(weighted.values()) != sum(frames.values())
