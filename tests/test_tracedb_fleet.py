"""Fleet trace collection: per-job spill stores, path-based handoff,
and the canonical campaign store — byte-identical serial vs parallel."""

import filecmp
import os

import pytest

from repro.comdes.examples import traffic_light_system
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import campaign_seeds, run_campaign
from repro.fleet import FleetRunner, SerialRunner, enumerate_campaign_jobs
from repro.fleet.jobs import JobSpec
from repro.codegen.instrument import InstrumentationPlan
from repro.tracedb import TraceStore, campaign_store_root, job_store_root
from repro.util.timeunits import sec

KW = dict(design_kinds=("wrong_target",), impl_kinds=("inverted_branch",),
          seeds=(1, 2), duration_us=sec(1))


def collect(tmp_path, name, runner):
    trace_dir = str(tmp_path / name)
    result = run_campaign(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, runner=runner, trace_dir=trace_dir,
        **KW)
    return result, trace_dir


def store_files(root):
    return sorted(f for f in os.listdir(root)
                  if f.endswith(".trc") or f == "index.json")


class TestCampaignTraceCollection:
    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        return collect(tmp_path_factory.mktemp("serial"), "t", SerialRunner())

    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        return collect(tmp_path_factory.mktemp("fleet"), "t",
                       FleetRunner(workers=2, chunk_size=1))

    def test_campaign_store_attached_to_result(self, serial):
        result, trace_dir = serial
        assert result.trace_store is not None
        assert result.trace_store.root == campaign_store_root(trace_dir)
        assert result.trace_store.event_count > 0

    def test_per_job_stores_exist_and_are_sealed(self, serial):
        result, trace_dir = serial
        # control + 2 design + 2 implementation jobs
        for index in range(5):
            root = job_store_root(trace_dir, index)
            store = TraceStore.open(root)  # raises if index.json missing
            assert store.event_count >= 0

    def test_campaign_store_is_canonically_ordered(self, serial):
        result, _ = serial
        records = list(result.trace_store.events())
        indices = [r["job_index"] for r in records]
        assert indices == sorted(indices)
        # within a job, original per-job seq order is preserved
        by_job = {}
        for record in records:
            by_job.setdefault(record["job_index"], []).append(
                record["job_seq"])
        for seqs in by_job.values():
            assert seqs == list(range(len(seqs)))
        assert {r["job_id"] for r in records} >= {
            "control", "design/wrong_target/1",
            "implementation/inverted_branch/2"}

    def test_fleet_collected_store_equals_serial_byte_for_byte(self, serial,
                                                               fleet):
        (r1, dir1), (r2, dir2) = serial, fleet
        c1, c2 = campaign_store_root(dir1), campaign_store_root(dir2)
        files1, files2 = store_files(c1), store_files(c2)
        assert files1 == files2
        for name in files1:
            assert filecmp.cmp(os.path.join(c1, name),
                               os.path.join(c2, name), shallow=False), name

    def test_detection_results_unchanged_by_collection(self, serial):
        result, _ = serial
        bare = run_campaign(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, runner=SerialRunner(), **KW)
        key = lambda r: [(o.fault.fault_id, o.model_detected, o.code_detected,
                          o.model_latency_us, o.code_latency_us)
                         for o in r.outcomes]
        assert key(result) == key(bare)
        assert bare.trace_store is None

    def test_trace_dir_without_runner_falls_back_to_serial(self, tmp_path):
        result, _ = collect(tmp_path, "inline", None)
        assert result.trace_store is not None

    def test_failed_job_result_still_points_at_its_trace(self, tmp_path):
        # a job that dies mid-experiment leaves a sealed store; the
        # failure result must reference it for the post-mortem
        from repro.fleet.worker import run_job
        # monitor_ref resolves fine but blows up when used inside the
        # experiment — i.e. after the per-job store was created
        spec = JobSpec(2, "design", "wrong_target", 1, sec(1),
                       "repro.comdes.examples:traffic_light_system",
                       "repro.errors:ReproError",
                       "repro.experiments:traffic_light_code_watches",
                       InstrumentationPlan.full(),
                       trace_dir=str(tmp_path))
        result = run_job(spec)
        assert result.failed
        assert result.trace_path
        assert TraceStore.open(result.trace_path).event_count == 0

    def test_failed_before_store_has_no_trace_path(self):
        from repro.fleet.worker import run_job
        spec = JobSpec(1, "design", "wrong_target", 1, sec(1),
                       "nonexistent_module:boom", "also:bad", "still:bad",
                       InstrumentationPlan.full())  # no trace_dir at all
        result = run_job(spec)
        assert result.failed
        assert result.trace_path == ""


class TestSeedExpansion:
    def test_campaign_seeds_passthrough_without_master(self):
        assert campaign_seeds("design", "wrong_target", (1, 2, 3)) == (1, 2, 3)

    def test_seeds_per_kind_without_master_seed_is_loud(self):
        from repro.errors import FleetError
        with pytest.raises(FleetError):
            campaign_seeds("design", "wrong_target", (1, 2, 3),
                           seeds_per_kind=50)

    def test_derived_streams_are_deterministic_and_distinct(self):
        a = campaign_seeds("design", "wrong_target", (1,), master_seed=7,
                          seeds_per_kind=4)
        b = campaign_seeds("design", "wrong_target", (1,), master_seed=7,
                          seeds_per_kind=4)
        c = campaign_seeds("implementation", "wrong_target", (1,),
                          master_seed=7, seeds_per_kind=4)
        assert a == b and len(a) == 4
        assert set(a).isdisjoint(c)  # category is part of the identity

    def test_enumeration_matches_inline_seed_plan(self):
        specs = enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches,
            design_kinds=("wrong_target",), impl_kinds=("op_swap",),
            seeds=(1,), duration_us=sec(1), plan=InstrumentationPlan.full(),
            master_seed=99, seeds_per_kind=3)
        fault_specs = [s for s in specs if s.category != "control"]
        assert len(fault_specs) == 6
        expected = (list(campaign_seeds("design", "wrong_target", (1,),
                                        99, 3))
                    + list(campaign_seeds("implementation", "op_swap", (1,),
                                          99, 3)))
        assert [s.seed for s in fault_specs] == expected

    def test_trace_dir_lands_on_every_spec(self, tmp_path):
        specs = enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches,
            design_kinds=(), impl_kinds=(), seeds=(),
            duration_us=sec(1), plan=InstrumentationPlan.full(),
            trace_dir=str(tmp_path))
        assert all(s.trace_dir == str(tmp_path) for s in specs)

    def test_spec_default_has_no_trace_dir(self):
        spec = JobSpec(0, "control", "", 0, 100, "a:b", "c:d", "e:f",
                       InstrumentationPlan.full())
        assert spec.trace_dir == ""
