"""Tests for the function-block library's reference semantics."""

import pytest

from repro.comdes.blocks import (
    AddFB, CompareFB, ConstantFB, DelayFB, GainFB, IntegratorFB, LimiterFB,
    MulFB, MuxFB, PiFB, SequenceFB, StateMachineFB, SubFB, ThresholdFB,
)
from repro.comdes.examples import blinker_machine
from repro.errors import ModelError


def run_block(block, input_trace):
    """Drive a block over a list of input dicts; return outputs per step."""
    state = block.state_vars()
    outputs = []
    for inputs in input_trace:
        out, state = block.behavior(inputs, state)
        outputs.append(out)
    return outputs


class TestStatelessBlocks:
    def test_constant(self):
        assert run_block(ConstantFB("k", 42), [{}]) == [{"y": 42}]

    def test_gain_rational(self):
        outs = run_block(GainFB("g", num=3, den=2), [{"u": 10}, {"u": -10}])
        assert [o["y"] for o in outs] == [15, -15]

    def test_gain_zero_denominator_rejected(self):
        with pytest.raises(ModelError):
            GainFB("g", num=1, den=0)

    def test_add_sub_mul(self):
        assert run_block(AddFB("a"), [{"a": 2, "b": 3}])[0]["y"] == 5
        assert run_block(SubFB("s"), [{"a": 2, "b": 3}])[0]["y"] == -1
        assert run_block(MulFB("m"), [{"a": 4, "b": 3}])[0]["y"] == 12

    def test_compare_ops(self):
        assert run_block(CompareFB("c", "lt"), [{"a": 1, "b": 2}])[0]["y"] == 1
        assert run_block(CompareFB("c", "ge"), [{"a": 1, "b": 2}])[0]["y"] == 0

    def test_compare_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            CompareFB("c", "spaceship")

    def test_limiter_clamps(self):
        outs = run_block(LimiterFB("l", lo=-5, hi=5),
                         [{"u": -100}, {"u": 3}, {"u": 100}])
        assert [o["y"] for o in outs] == [-5, 3, 5]

    def test_limiter_bad_range_rejected(self):
        with pytest.raises(ModelError):
            LimiterFB("l", lo=5, hi=-5)

    def test_mux_selects(self):
        outs = run_block(MuxFB("m"), [{"sel": 1, "a": 10, "b": 20},
                                      {"sel": 0, "a": 10, "b": 20}])
        assert [o["y"] for o in outs] == [10, 20]

    def test_missing_input_raises(self):
        with pytest.raises(ModelError):
            run_block(AddFB("a"), [{"a": 1}])


class TestThreshold:
    def test_basic_threshold(self):
        outs = run_block(ThresholdFB("t", limit=10),
                         [{"u": 9}, {"u": 10}, {"u": 11}, {"u": 9}])
        assert [o["y"] for o in outs] == [0, 1, 1, 0]

    def test_hysteresis_holds_on(self):
        block = ThresholdFB("t", limit=10, hysteresis=3)
        # Turns on at 10; must stay on until u < 7.
        outs = run_block(block, [{"u": 10}, {"u": 8}, {"u": 7}, {"u": 6}])
        assert [o["y"] for o in outs] == [1, 1, 1, 0]

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ModelError):
            ThresholdFB("t", limit=0, hysteresis=-1)


class TestStatefulBlocks:
    def test_delay_shifts_by_one(self):
        outs = run_block(DelayFB("z", init=99), [{"u": 1}, {"u": 2}, {"u": 3}])
        assert [o["y"] for o in outs] == [99, 1, 2]

    def test_sequence_repeats(self):
        outs = run_block(SequenceFB("s", values=[1, 2], repeat=True), [{}] * 5)
        assert [o["y"] for o in outs] == [1, 2, 1, 2, 1]

    def test_sequence_holds_last(self):
        outs = run_block(SequenceFB("s", values=[1, 2], repeat=False), [{}] * 4)
        assert [o["y"] for o in outs] == [1, 2, 2, 2]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ModelError):
            SequenceFB("s", values=[])

    def test_integrator_accumulates_and_clamps(self):
        block = IntegratorFB("i", num=1, den=1, lo=0, hi=10)
        outs = run_block(block, [{"u": 4}, {"u": 4}, {"u": 4}, {"u": -100}])
        assert [o["y"] for o in outs] == [4, 8, 10, 0]

    def test_integrator_rational_gain(self):
        block = IntegratorFB("i", num=1, den=2, lo=-100, hi=100)
        outs = run_block(block, [{"u": 5}, {"u": 5}])
        assert [o["y"] for o in outs] == [2, 4]  # 5//2 per step

    def test_pi_proportional_and_integral(self):
        block = PiFB("pi", kp_num=2, kp_den=1, ki_num=1, ki_den=1, lo=-100, hi=100)
        outs = run_block(block, [{"e": 3}, {"e": 3}])
        # step1: acc=3, y=2*3+3=9 ; step2: acc=6, y=6+6=12
        assert [o["y"] for o in outs] == [9, 12]

    def test_pi_anti_windup_clamps_accumulator(self):
        block = PiFB("pi", kp_num=0, kp_den=1, ki_num=1, ki_den=1, lo=0, hi=5)
        outs = run_block(block, [{"e": 100}, {"e": -1}])
        # acc clamps at 5, then decreases — no windup beyond the clamp.
        assert [o["y"] for o in outs] == [5, 4]


class TestStateMachineBlock:
    def test_wraps_machine_ports(self):
        block = StateMachineFB("b", blinker_machine())
        assert block.inputs == []
        assert block.outputs == ["led"]

    def test_stepping_matches_machine(self):
        machine = blinker_machine(half_period_steps=2)
        block = StateMachineFB("b", machine)
        block_leds = [o["led"] for o in run_block(block, [{}] * 6)]
        machine_leds = [env["led"] for _, env in machine.run([{}] * 6)]
        assert block_leds == machine_leds

    def test_outputs_persist_when_no_transition_writes(self):
        machine = blinker_machine(half_period_steps=3)
        block = StateMachineFB("b", machine)
        leds = [o["led"] for o in run_block(block, [{}] * 7)]
        # led turns on at step 3 and holds until step 6
        assert leds == [0, 0, 1, 1, 1, 0, 0]
