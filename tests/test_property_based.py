"""Property-based tests (hypothesis) on the core invariants.

* compiled expressions == interpreted expressions, on random ASTs;
* the TAP controller obeys the IEEE 1149.1 reset property;
* frame codec round-trips under arbitrary chunking and survives noise;
* random chain machines: firmware == interpreter;
* model serialization round-trips;
* the preemptive scheduler conserves demand.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.codegen.lower_expr import lower_expr
from repro.comdes.expr import Binary, Const, Unary, Var
from repro.comm.frames import FrameDecoder, encode_frame
from repro.comm.jtag import TAP_TRANSITIONS, TapController, TapState
from repro.experiments.workloads import chain_system
from repro.meta.serialize import model_from_dict, model_to_dict
from repro.comdes.metamodel import comdes_metamodel
from repro.comdes.reflect import system_to_model
from repro.rtos.scheduler import NodeScheduler
from repro.rtos.task import ActiveJob
from repro.sim.kernel import Simulator
from repro.target.assembler import Assembler
from repro.target.board import Board, DebugPort
from repro.target.cpu import Cpu
from repro.target.memory import MemoryMap, RAM_BASE
from repro.target.peripherals import Gpio

VAR_NAMES = ("a", "b", "c")

# Division/modulo excluded from generated ops: random operands hit the
# divide-by-zero trap (interpreter raises ZeroDivisionError, CPU TargetFault
# — both refuse, but the equivalence test wants total functions).
SAFE_BINARY_OPS = ("add", "sub", "mul", "min", "max", "and", "or",
                   "eq", "ne", "lt", "le", "gt", "ge")


def expr_strategy(depth: int = 3):
    leaf = st.one_of(
        st.integers(min_value=-2**31, max_value=2**31 - 1).map(Const),
        st.sampled_from(VAR_NAMES).map(Var),
    )
    if depth == 0:
        return leaf
    sub = expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(SAFE_BINARY_OPS), sub, sub)
          .map(lambda t: Binary(*t)),
        st.tuples(st.sampled_from(("neg", "not")), sub)
          .map(lambda t: Unary(*t)),
    )


class TestExpressionEquivalence:
    @given(expr=expr_strategy(),
           env_values=st.tuples(*[st.integers(min_value=-2**31, max_value=2**31 - 1)
                                  for _ in VAR_NAMES]))
    @settings(max_examples=200, deadline=None)
    def test_compiled_equals_interpreted(self, expr, env_values):
        env = dict(zip(VAR_NAMES, env_values))
        memory = MemoryMap(64)
        addresses = {}
        for i, name in enumerate(VAR_NAMES):
            addresses[name] = RAM_BASE + i
            memory.poke(RAM_BASE + i, env[name])
        asm = Assembler()
        lower_expr(asm, expr, lambda n: addresses[n])
        asm.emit("STORE", RAM_BASE + 60)
        asm.emit("HALT")
        cpu = Cpu(memory, Gpio(), stack_depth=256)
        cpu.load(asm.assemble())
        cpu.reset_task(0)
        cpu.run()
        assert memory.peek(RAM_BASE + 60) == expr.eval(env)


class TestTapProperties:
    @given(walk=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                         max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_five_tms_ones_always_reach_reset(self, walk):
        tap = TapController(DebugPort(Board()))
        for tms, tdi in walk:
            tap.drive(tms, tdi)
        for _ in range(5):
            tap.drive(1)
        assert tap.state is TapState.TEST_LOGIC_RESET

    @given(walk=st.lists(st.integers(0, 1), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_transition_table_is_total(self, walk):
        tap = TapController(DebugPort(Board()))
        for tms in walk:
            previous = tap.state
            tap.drive(tms)
            assert tap.state is TAP_TRANSITIONS[previous][tms]

    def test_every_state_reachable(self):
        # BFS over the transition relation covers all 16 states.
        seen = {TapState.TEST_LOGIC_RESET}
        frontier = [TapState.TEST_LOGIC_RESET]
        while frontier:
            state = frontier.pop()
            for nxt in TAP_TRANSITIONS[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert seen == set(TapState)

    @given(values=st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1),
                           min_size=1, max_size=24),
           start=st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_block_read_equals_per_word_reads(self, values, start):
        # A BLOCKREAD of N words is observationally identical to N
        # MEMADDR+MEMREAD round trips: same values, same final address.
        from repro.comm.jtag import JtagProbe
        board = Board()
        base = RAM_BASE + start
        for offset, value in enumerate(values):
            board.memory.poke(base + offset, value)
        block_probe = JtagProbe(TapController(DebugPort(board)))
        block_values, _ = block_probe.read_block_timed(base, len(values))
        word_probe = JtagProbe(TapController(DebugPort(board)))
        word_values = [word_probe.read_word(base + offset)
                       for offset in range(len(values))]
        assert block_values == word_values == values

    @given(addrs=st.lists(st.integers(0, 40), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_scatter_read_aligns_with_request_order(self, addrs):
        from repro.comm.jtag import JtagProbe
        board = Board()
        for offset in range(41):
            board.memory.poke(RAM_BASE + offset, offset * 7 - 140)
        probe = JtagProbe(TapController(DebugPort(board)))
        request = [RAM_BASE + a for a in addrs]
        values, _ = probe.read_scatter_timed(request)
        assert values == [board.memory.peek(a) for a in request]

    @given(walk=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                         max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_five_tms_reset_holds_mid_block_read(self, walk):
        # The reset property must survive the new DR: load BLOCKREAD,
        # wander anywhere (mid-shift included), then 5x TMS=1 resets.
        from repro.comm.jtag import Instruction, JtagProbe
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.BLOCKREAD)
        for tms, tdi in walk:
            tap.drive(tms, tdi)
        for _ in range(5):
            tap.drive(1)
        assert tap.state is TapState.TEST_LOGIC_RESET
        assert tap.ir == int(Instruction.IDCODE)


class TestFrameProperties:
    @given(commands=st.lists(
        st.tuples(st.integers(1, 255), st.integers(0, 0xFFFF),
                  st.integers(-2**31, 2**31 - 1)),
        min_size=1, max_size=20,
    ), chunk=st.integers(1, 7))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_under_arbitrary_chunking(self, commands, chunk):
        stream = b"".join(encode_frame(*c) for c in commands)
        decoder = FrameDecoder()
        decoded = []
        for i in range(0, len(stream), chunk):
            decoded.extend(decoder.feed(stream[i:i + chunk]))
        assert decoded == list(commands)
        assert decoder.checksum_errors == 0

    @given(noise=st.binary(max_size=30),
           command=st.tuples(st.integers(1, 255), st.integers(0, 0xFFFF),
                             st.integers(-2**31, 2**31 - 1)))
    @settings(max_examples=100, deadline=None)
    def test_decoder_resynchronizes_after_noise(self, noise, command):
        decoder = FrameDecoder()
        decoder.feed(noise)
        # Flush ambiguity: a partial noise prefix may swallow up to one
        # frame's worth of bytes, so send the real frame twice.
        frame = encode_frame(*command)
        decoded = decoder.feed(frame + frame)
        assert command in decoded


class TestChainSystemsProperty:
    @given(n_states=st.integers(2, 12), dwell=st.integers(1, 3),
           rounds=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_firmware_equals_interpreter_on_random_chains(self, n_states,
                                                          dwell, rounds):
        system = chain_system(n_states, dwell=dwell)
        firmware = generate_firmware(system, InstrumentationPlan.full())
        assert (run_firmware_lockstep(system, firmware, rounds)
                == system.lockstep_run(rounds))


class TestSerializationProperty:
    @given(n_states=st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_reflective_roundtrip(self, n_states):
        model = system_to_model(chain_system(n_states))
        data = model_to_dict(model)
        restored = model_from_dict(data, comdes_metamodel())
        assert model_to_dict(restored) == data


class TestSchedulerProperties:
    @given(jobs=st.lists(
        st.tuples(st.integers(0, 500),      # release offset
                  st.integers(1, 50),       # demand
                  st.integers(0, 3)),       # priority
        min_size=1, max_size=12,
    ))
    @settings(max_examples=60, deadline=None)
    def test_demand_is_conserved_and_completions_ordered(self, jobs):
        sim = Simulator()
        scheduler = NodeScheduler(sim, "n")
        completions = []
        for index, (offset, demand, priority) in enumerate(jobs):
            def make(idx, dem):
                return lambda t: completions.append((idx, dem, t))
            def release(idx=index, dem=demand, prio=priority):
                job = ActiveJob(f"j{idx}", prio, sim.now, sim.now + 10_000,
                                dem, on_complete=make(idx, dem))
                scheduler.release(job)
            sim.schedule_at(offset, release)
        sim.run()
        # Every job completes exactly once.
        assert len(completions) == len(jobs)
        # Total busy time equals total demand: the last completion can be
        # no earlier than the max of (release + own demand) and no earlier
        # than total demand after the first release.
        total_demand = sum(d for _, d, _ in jobs)
        first_release = min(o for o, _, _ in jobs)
        last_completion = max(t for _, _, t in completions)
        assert last_completion >= first_release + max(
            0, total_demand - 1)  # contiguous backlog lower bound is loose
        for idx, demand, t in completions:
            offset = jobs[idx][0]
            assert t >= offset + demand  # nobody finishes before its demand
