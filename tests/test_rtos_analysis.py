"""Tests for analytic RTA, cross-checked against the simulated scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulerError
from repro.rtos.analysis import AnalyzedTask, analyze, response_time, utilization
from repro.rtos.scheduler import NodeScheduler
from repro.rtos.task import ActiveJob
from repro.sim.kernel import Simulator


class TestRecurrence:
    def test_highest_priority_task_runs_alone(self):
        task = AnalyzedTask("hp", period_us=100, wcet_us=30, priority=0)
        assert response_time(task, []) == 30

    def test_textbook_example(self):
        # Classic: T=(7,12,20), C=(3,3,5) -> R=(3,6,20).
        t1 = AnalyzedTask("t1", 7, 3, 0)
        t2 = AnalyzedTask("t2", 12, 3, 1)
        t3 = AnalyzedTask("t3", 20, 5, 2)
        results = analyze([t1, t2, t3])
        assert [r.response_us for r in results] == [3, 6, 20]
        assert all(r.schedulable for r in results)

    def test_overloaded_task_misses_deadline(self):
        # Utilization 1.1: the victim's first job still finishes (R = 200,
        # the fixed point of 20 + ceil(R/10)*9) but blows its deadline.
        t1 = AnalyzedTask("hog", 10, 9, 0)
        t2 = AnalyzedTask("victim", 100, 20, 1)
        results = analyze([t1, t2])
        assert results[1].response_us == 200
        assert not results[1].schedulable

    def test_truly_unbounded_reported_none(self):
        # The hog alone saturates the CPU: the victim never completes.
        t1 = AnalyzedTask("hog", 10, 10, 0)
        t2 = AnalyzedTask("victim", 100, 20, 1)
        results = analyze([t1, t2])
        assert results[1].response_us is None
        assert not results[1].schedulable

    def test_deadline_checked(self):
        t1 = AnalyzedTask("a", 10, 4, 0)
        t2 = AnalyzedTask("b", 20, 7, 1, deadline_us=10)
        results = analyze([t1, t2])
        # R(b) = 7 + ceil(R/10)*4 -> 15 > D=10
        assert results[1].response_us == 15
        assert not results[1].schedulable

    def test_utilization(self):
        tasks = [AnalyzedTask("a", 10, 5, 0), AnalyzedTask("b", 20, 5, 1)]
        assert utilization(tasks) == pytest.approx(0.75)

    def test_zero_wcet_rejected(self):
        with pytest.raises(SchedulerError):
            response_time(AnalyzedTask("z", 10, 0, 0), [])


def simulate_critical_instant(tasks, hyperperiods=1):
    """Release all tasks synchronously; measure per-task max response."""
    sim = Simulator()
    scheduler = NodeScheduler(sim, "n")
    worst = {t.name: 0 for t in tasks}
    horizon = max(t.period_us for t in tasks) * 3 * hyperperiods

    def release(task):
        job = ActiveJob(
            task.name, task.priority, sim.now, sim.now + task.period_us,
            task.wcet_us,
            on_complete=lambda done, t=task, rel=sim.now: worst.__setitem__(
                t.name, max(worst[t.name], done - rel)),
        )
        scheduler.release(job)

    for task in tasks:
        sim.every(task.period_us, release, task, start=0)
    sim.run_until(horizon)
    return worst


class TestSimulationAgreesWithAnalysis:
    def test_measured_equals_analytic_on_textbook_set(self):
        tasks = [AnalyzedTask("t1", 700, 300, 0),
                 AnalyzedTask("t2", 1200, 300, 1),
                 AnalyzedTask("t3", 2000, 500, 2)]
        analytic = {r.task.name: r.response_us for r in analyze(tasks)}
        measured = simulate_critical_instant(tasks)
        # Synchronous release IS the critical instant: bounds are tight.
        assert measured == analytic

    @given(wcets=st.tuples(st.integers(1, 30), st.integers(1, 30),
                           st.integers(1, 30)))
    @settings(max_examples=40, deadline=None)
    def test_measured_never_exceeds_analytic(self, wcets):
        periods = (100, 170, 290)
        tasks = [AnalyzedTask(f"t{i}", periods[i], wcets[i], i)
                 for i in range(3)]
        results = analyze(tasks)
        if not all(r.schedulable for r in results):
            return  # unbounded sets are not comparable
        analytic = {r.task.name: r.response_us for r in results}
        measured = simulate_critical_instant(tasks)
        for name in analytic:
            assert measured[name] <= analytic[name]
