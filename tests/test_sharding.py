"""Tests for multi-board sharding and the kernel's record ring.

The sharded kernel's contract is *equivalence*: splitting a system's
nodes across shard kernels — in-process or in worker processes — changes
wall-clock ownership, never results. Checked against the monolithic
``DtmKernel`` on the two-node cruise control (a real cross-node feedback
loop: throttle and speed cross the network every period).
"""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import cruise_control_system, traffic_light_system
from repro.errors import FleetError, SchedulerError
from repro.rtos.kernel import DtmKernel
from repro.rtos.sharding import ShardedDtmKernel, partition_nodes
from repro.sim.kernel import Simulator
from repro.util.timeunits import ms

DURATION = ms(400)

CRUISE_REF = "repro.comdes.examples:cruise_control_system"


def record_key(record):
    return (record.actor, record.index, record.release, record.completion,
            record.deadline_abs, record.demand_us, record.skipped,
            record.missed)


def build_monolithic():
    system = cruise_control_system()
    firmware = generate_firmware(system, InstrumentationPlan.none())
    kernel = DtmKernel(system, firmware, sim=Simulator(), latched=True)
    kernel.run(DURATION)
    return system, kernel


def assert_equivalent(system, monolithic, sharded):
    for actor in system.actors:
        assert ([record_key(r) for r in monolithic.records_for(actor)]
                == [record_key(r) for r in sharded.records_for(actor)]), actor
    assert monolithic.deadline_misses == sharded.deadline_misses
    assert monolithic.jobs_skipped == sharded.jobs_skipped
    for node in system.nodes():
        for signal in system.signals:
            assert (monolithic.signal_value(node, signal)
                    == sharded.signal_value(node, signal)), (node, signal)
    for signal in monolithic.jitter.signals():
        assert (monolithic.jitter.phases(signal)
                == sharded.jitter.phases(signal)), signal


class TestPartition:
    def test_round_robin_sorted(self):
        assert partition_nodes(["b", "a", "c"], 2) == [["a", "c"], ["b"]]

    def test_more_shards_than_nodes_collapses(self):
        assert partition_nodes(["a"], 4) == [["a"]]

    def test_invalid_count_rejected(self):
        with pytest.raises(SchedulerError):
            partition_nodes(["a"], 0)


class TestShardedEquivalence:
    def test_inline_backend_matches_monolithic(self):
        system, monolithic = build_monolithic()
        sharded = ShardedDtmKernel(cruise_control_system(), shards=2)
        sharded.run(DURATION)
        assert_equivalent(system, monolithic, sharded)

    def test_process_backend_matches_monolithic(self):
        system, monolithic = build_monolithic()
        with ShardedDtmKernel(cruise_control_system(), shards=2,
                              backend="process",
                              system_ref=CRUISE_REF) as sharded:
            sharded.run(DURATION)
            assert_equivalent(system, monolithic, sharded)

    def test_epoch_size_is_result_invariant(self):
        system, monolithic = build_monolithic()
        for epoch_us in (100, 37, 1):
            sharded = ShardedDtmKernel(cruise_control_system(), shards=2,
                                       epoch_us=epoch_us)
            sharded.run(DURATION)
            assert_equivalent(system, monolithic, sharded)

    def test_incremental_runs_match_one_shot(self):
        system, monolithic = build_monolithic()
        sharded = ShardedDtmKernel(cruise_control_system(), shards=2)
        for t in range(ms(100), DURATION + 1, ms(100)):
            sharded.run(t)
        assert_equivalent(system, monolithic, sharded)

    def test_single_shard_is_just_a_kernel(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        monolithic = DtmKernel(system, firmware, sim=Simulator())
        monolithic.run(DURATION)
        sharded = ShardedDtmKernel(traffic_light_system(), shards=1)
        sharded.run(DURATION)
        assert_equivalent(system, monolithic, sharded)


class TestShardedGuards:
    def test_period_at_or_below_delay_rejected(self):
        # Conservative sync needs lookahead below every task period.
        with pytest.raises(SchedulerError, match="period"):
            ShardedDtmKernel(cruise_control_system(), shards=2,
                             net_delay_us=ms(20))

    def test_epoch_above_lookahead_rejected(self):
        with pytest.raises(SchedulerError, match="epoch"):
            ShardedDtmKernel(cruise_control_system(), shards=2, epoch_us=101)

    def test_zero_delay_multi_shard_rejected(self):
        with pytest.raises(SchedulerError, match="lookahead"):
            ShardedDtmKernel(cruise_control_system(), shards=2,
                             net_delay_us=0)

    def test_process_backend_requires_declarative_system(self):
        with pytest.raises(FleetError, match="system_ref"):
            ShardedDtmKernel(cruise_control_system(), shards=2,
                             backend="process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(FleetError, match="backend"):
            ShardedDtmKernel(cruise_control_system(), backend="quantum")

    def test_shard_nodes_validated_by_kernel(self):
        system = cruise_control_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        with pytest.raises(SchedulerError, match="nodes"):
            DtmKernel(system, firmware, nodes=["node0", "mars"])


class TestRecordRing:
    def _run(self, capacity):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware, sim=Simulator(),
                           record_capacity=capacity)
        kernel.run(DURATION)
        return kernel

    def test_unbounded_by_default(self):
        kernel = self._run(None)
        assert kernel.records_dropped == 0
        assert len(kernel.records) > 4

    def test_ring_keeps_newest_and_counts_dropped(self):
        full = self._run(None)
        ringed = self._run(4)
        assert len(ringed.records) == 4
        assert ringed.records_dropped == len(full.records) - 4
        assert ([record_key(r) for r in ringed.records]
                == [record_key(r) for r in full.records[-4:]])

    def test_capacity_above_load_never_drops(self):
        full = self._run(None)
        roomy = self._run(len(full.records) + 10)
        assert roomy.records_dropped == 0
        assert len(roomy.records) == len(full.records)

    def test_invalid_capacity_rejected(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        with pytest.raises(SchedulerError, match="capacity"):
            DtmKernel(system, firmware, record_capacity=0)

    def test_sharded_kernel_forwards_capacity(self):
        sharded = ShardedDtmKernel(cruise_control_system(), shards=2,
                                   record_capacity=3)
        sharded.run(DURATION)
        assert sharded.records_dropped > 0
        assert len(sharded.records) <= 3 * 2  # <= capacity per shard
