"""Tests for the code-level baseline debugger."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.debugger.gdb import HW_WATCHPOINT_SLOTS, SourceDebugger
from repro.errors import DebuggerError
from repro.target.board import Board
from repro.target.cpu import StopReason


def make_debugger():
    system = traffic_light_system()
    firmware = generate_firmware(system, InstrumentationPlan.none())
    board = Board()
    board.load_firmware(firmware)
    return SourceDebugger(board, firmware), board, firmware


class TestBreakpoints:
    def test_break_at_pc_stops_run(self):
        debugger, board, firmware = make_debugger()
        entry = firmware.entry_of("lights")
        debugger.break_at(entry + 3)
        result = debugger.run_task("lights")
        assert result.reason is StopReason.BREAKPOINT
        assert board.cpu.pc == entry + 3

    def test_continue_after_breakpoint(self):
        debugger, board, firmware = make_debugger()
        debugger.break_at(firmware.entry_of("lights") + 3)
        debugger.run_task("lights")
        result = debugger.continue_()
        assert result.reason is StopReason.HALTED

    def test_break_at_path_uses_source_map(self):
        debugger, _, firmware = make_debugger()
        pcs = debugger.break_at_path("sm:lights.lamp")
        assert pcs
        result = debugger.run_task("lights")
        assert result.reason is StopReason.BREAKPOINT

    def test_break_at_unknown_path_rejected(self):
        debugger, _, _ = make_debugger()
        with pytest.raises(DebuggerError):
            debugger.break_at_path("sm:ghost.machine")

    def test_break_outside_code_rejected(self):
        debugger, _, _ = make_debugger()
        with pytest.raises(DebuggerError):
            debugger.break_at(10_000)

    def test_clear_breakpoints(self):
        debugger, _, firmware = make_debugger()
        debugger.break_at(firmware.entry_of("lights") + 1)
        debugger.clear_breakpoints()
        assert debugger.run_task("lights").reason is StopReason.HALTED


class TestSingleStep:
    def test_step_instruction_advances_one(self):
        debugger, board, firmware = make_debugger()
        debugger.break_at(firmware.entry_of("lights"))
        board.cpu.reset_task(firmware.entry_of("lights"))
        before = board.cpu.instructions
        debugger.step_instruction()
        assert board.cpu.instructions == before + 1

    def test_step_requires_stopped_target(self):
        debugger, _, _ = make_debugger()
        with pytest.raises(DebuggerError):
            debugger.step_instruction()


class TestWatchpoints:
    def test_change_watch_fires_on_write(self):
        debugger, board, _ = make_debugger()
        debugger.watch("lights.lamp.$t")
        # Run a few lamp jobs; the phase timer increments on dwell steps.
        for _ in range(3):
            debugger.run_task("lights")
        assert debugger.hits
        assert debugger.hits[0].watchpoint.symbol == "lights.lamp.$t"

    def test_conditional_watch(self):
        debugger, _, _ = make_debugger()
        watch = debugger.watch("lights.lamp.$t", predicate=lambda v: v >= 2)
        for _ in range(5):
            debugger.run_task("lights")
        assert watch.hits >= 1
        assert all(h.value >= 2 for h in debugger.hits)

    def test_hardware_slots_limited(self):
        debugger, _, firmware = make_debugger()
        symbols = [s.name for s in firmware.symbols.symbols()][:HW_WATCHPOINT_SLOTS + 1]
        for name in symbols[:HW_WATCHPOINT_SLOTS]:
            debugger.watch(name)
        with pytest.raises(DebuggerError):
            debugger.watch(symbols[HW_WATCHPOINT_SLOTS])

    def test_on_hit_callback(self):
        debugger, _, _ = make_debugger()
        seen = []
        debugger.watch("lights.lamp.$t")
        debugger.on_hit = seen.append
        debugger.run_task("lights")
        debugger.run_task("lights")
        assert seen


class TestInspection:
    def test_inspect_symbol(self):
        debugger, _, _ = make_debugger()
        debugger.run_task("lights")
        assert debugger.inspect("lights.lamp.$t") == 1

    def test_list_source_marks_pc(self):
        debugger, board, firmware = make_debugger()
        board.cpu.reset_task(firmware.entry_of("lights"))
        listing = debugger.list_source()
        assert "=>" in listing

    def test_backtrace_names_model_element(self):
        debugger, board, firmware = make_debugger()
        debugger.break_at_path("sm:lights.lamp")
        debugger.run_task("lights")
        assert "lights.lamp" in debugger.backtrace()
