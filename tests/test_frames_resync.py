"""Property tests for FrameDecoder resynchronization.

The decoder's contract on a noisy serial line: garbage, truncated
frames and corrupted bytes are counted and skipped, never fatal, and
the stream realigns on the next intact frame. Hypothesis drives three
invariants:

* **chunking invariance** — feeding a byte stream in any chunking
  decodes the same frames with the same error counters as feeding it
  whole (the decoder is a pure function of the byte sequence);
* **clean-garbage recovery** — interleaving SOF-free garbage between
  intact frames never costs a frame: every frame decodes, and every
  garbage byte is counted as exactly one framing error;
* **determinism** — two decoders fed the same stream agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.comm.frames import FRAME_LEN, SOF, FrameDecoder, encode_frame

commands = st.tuples(
    st.integers(min_value=0, max_value=0xFF),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
)

#: garbage that can never look like a frame start
sofless_garbage = st.binary(max_size=30).map(
    lambda b: bytes(x for x in b if x != SOF))

arbitrary_stream = st.binary(max_size=120)


def decode_whole(stream: bytes):
    decoder = FrameDecoder()
    frames = decoder.feed(stream)
    return (frames, decoder.frames_decoded, decoder.checksum_errors,
            decoder.framing_errors)


def chunkings(stream: bytes, cuts):
    """Split *stream* at the (sorted, deduplicated) cut offsets."""
    points = sorted({min(c, len(stream)) for c in cuts})
    pieces, prev = [], 0
    for point in points:
        pieces.append(stream[prev:point])
        prev = point
    pieces.append(stream[prev:])
    return pieces


class TestChunkingInvariance:
    @given(stream=arbitrary_stream,
           cuts=st.lists(st.integers(min_value=0, max_value=120),
                         max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_any_chunking_equals_feeding_whole(self, stream, cuts):
        whole = decode_whole(stream)
        decoder = FrameDecoder()
        frames = []
        for piece in chunkings(stream, cuts):
            frames.extend(decoder.feed(piece))
        assert (frames, decoder.frames_decoded, decoder.checksum_errors,
                decoder.framing_errors) == whole

    @given(command=commands)
    @settings(max_examples=100, deadline=None)
    def test_byte_at_a_time_decodes_one_frame(self, command):
        decoder = FrameDecoder()
        frames = []
        for byte in encode_frame(*command):
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [command]
        assert decoder.checksum_errors == decoder.framing_errors == 0


class TestGarbageRecovery:
    @given(frames=st.lists(commands, min_size=1, max_size=6),
           gaps=st.lists(sofless_garbage, min_size=7, max_size=7))
    @settings(max_examples=200, deadline=None)
    def test_sofless_garbage_never_costs_a_frame(self, frames, gaps):
        stream = gaps[0]
        for command, gap in zip(frames, gaps[1:]):
            stream += encode_frame(*command) + gap
        decoded, count, checksum_errors, framing_errors = decode_whole(stream)
        assert decoded == frames
        assert count == len(frames)
        assert checksum_errors == 0
        # every garbage byte before, between or after the frames is one
        # framing error (SOF-free trailing bytes can never start a
        # frame, so the decoder discards them immediately)
        consumed_gaps = gaps[:len(frames) + 1]
        assert framing_errors == sum(len(g) for g in consumed_gaps)

    @given(command=commands,
           cut=st.integers(min_value=1, max_value=FRAME_LEN - 1),
           tail=st.lists(commands, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_truncated_frame_resyncs_on_the_tail(self, command, cut, tail):
        stream = encode_frame(*command)[:cut]
        for later in tail:
            stream += encode_frame(*later)
        decoder = FrameDecoder()
        decoded = decoder.feed(stream)
        # the truncated head is lost, and a stale 10-byte window
        # straddling it can swallow the first tail frame — or even
        # decode as a bogus frame when the straddled bytes happen to
        # checksum (command=(0,0,0), cut=4, tail=[(0,0,-116)] collides
        # exactly like that: 07+7E+07 == 0x8C), so no mid-stream frame
        # is guaranteed. What IS guaranteed: the line is never jammed,
        # and the decoder cannot invent frames beyond the byte budget
        assert decoded
        assert len(decoded) <= len(tail)
        # ...and the stream realigns: once a SOF-free gap at least one
        # frame long has flushed every stale window, the next intact
        # frame always decodes
        sentinel = (9, 9, 9)
        quiet = bytes([0x00] * FRAME_LEN)
        assert decoder.feed(quiet + encode_frame(*sentinel))[-1:] == \
            [sentinel]

    @given(stream=arbitrary_stream, frames=st.lists(commands, min_size=1,
                                                    max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_noise_then_frames_always_recovers(self, stream,
                                                         frames):
        # whatever preceded them, intact frames at the end of a quiet
        # stream must decode — pad with enough SOF-free filler that any
        # stale partial-frame window has flushed
        filler = bytes([0x00] * FRAME_LEN)
        for command in frames:
            stream += filler + encode_frame(*command)
        decoded = decode_whole(stream)[0]
        assert decoded[-len(frames):] == frames


class TestErrorAccounting:
    def test_pure_garbage_counts_every_byte(self):
        decoder = FrameDecoder()
        assert decoder.feed(bytes(range(1, 100))) == []
        # no SOF (0x7E = 126) anywhere in 1..99: every byte is framing
        # noise and nothing stays buffered
        assert decoder.framing_errors == 99
        assert len(decoder._buffer) == 0

    def test_corrupt_then_clean_frame(self):
        frame = encode_frame(9, 100, -5)
        corrupt = bytearray(frame)
        corrupt[5] ^= 0x10
        decoder = FrameDecoder()
        decoded = decoder.feed(bytes(corrupt) + frame)
        assert decoded == [(9, 100, -5)]
        assert decoder.checksum_errors >= 1

    def test_large_garbage_burst_is_linear_not_quadratic(self):
        # the resync path must handle megabyte bursts without the old
        # O(n^2) pop-per-byte behavior; this completes instantly now
        decoder = FrameDecoder()
        burst = bytes([0x00]) * 1_000_000
        assert decoder.feed(burst) == []
        assert decoder.framing_errors == 1_000_000
        frame = encode_frame(1, 2, 3)
        assert decoder.feed(frame) == [(1, 2, 3)]
