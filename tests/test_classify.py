"""Tests for the bug classifier (the paper's future-work extension)."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.engine.classify import BugClass, BugClassifier, classify_bug
from repro.faults.design import DESIGN_FAULT_KINDS, inject_design_fault
from repro.faults.implementation import (
    IMPL_FAULT_KINDS, inject_implementation_fault,
)

PLAN = InstrumentationPlan.none()


class TestVerdicts:
    def test_clean_pair_is_consistent(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, PLAN)
        result = classify_bug(system, firmware, violation_observed=False)
        assert result.verdict is BugClass.CONSISTENT

    def test_design_fault_classified_as_design(self):
        mutant, _ = inject_design_fault(traffic_light_system(),
                                        "wrong_target", 1)
        firmware = generate_firmware(mutant, PLAN)  # faithful codegen
        result = classify_bug(mutant, firmware, violation_observed=True)
        assert result.verdict is BugClass.DESIGN
        assert result.divergence is None

    def test_implementation_fault_classified_as_implementation(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, PLAN)
        mutant_fw, _ = inject_implementation_fault(firmware,
                                                   "inverted_branch", 1)
        result = classify_bug(system, mutant_fw, violation_observed=True)
        assert result.verdict is BugClass.IMPLEMENTATION
        assert result.divergence is not None
        assert result.divergence.model_value != result.divergence.target_value

    def test_crashing_firmware_is_implementation(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, PLAN)
        mutant_fw, fault = inject_implementation_fault(firmware, "op_swap", 2)
        # seed 2 produces the stack-corrupting swap (crashes in campaign runs)
        result = classify_bug(system, mutant_fw)
        assert result.verdict is BugClass.IMPLEMENTATION

    def test_invalid_rounds_rejected(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, PLAN)
        with pytest.raises(ValueError):
            BugClassifier(system, firmware, rounds=0)


class TestClassifierAccuracy:
    """The classifier must be near-perfect by construction: design faults

    never create divergence (codegen is faithful to the mutated model) and
    implementation faults either diverge or are behaviourally equivalent.
    """

    def test_all_design_faults_classified_design(self):
        for kind in DESIGN_FAULT_KINDS:
            for seed in (1, 2):
                mutant, fault = inject_design_fault(traffic_light_system(),
                                                    kind, seed)
                if mutant is None:
                    continue
                firmware = generate_firmware(mutant, PLAN)
                result = classify_bug(mutant, firmware)
                assert result.verdict is BugClass.DESIGN, (fault, result)

    def test_implementation_faults_never_classified_design_when_divergent(self):
        system = traffic_light_system()
        base = generate_firmware(system, PLAN)
        divergent = 0
        for kind in IMPL_FAULT_KINDS:
            for seed in (1, 2):
                mutant_fw, fault = inject_implementation_fault(base, kind, seed)
                if mutant_fw is None:
                    continue
                result = classify_bug(system, mutant_fw)
                # Equivalent mutants legitimately come back CONSISTENT-like
                # (classified DESIGN only because we *claim* a violation);
                # whenever the oracle finds divergence it must say so.
                if result.divergence is not None:
                    divergent += 1
                    assert result.verdict is BugClass.IMPLEMENTATION
        assert divergent >= 8  # most code mutations visibly diverge
