"""Tests for the virtual CPU, memory map, assembler and board."""

import pytest

from repro.errors import AssemblyError, TargetFault
from repro.target.assembler import Assembler, disassemble
from repro.target.board import Board, DebugPort
from repro.target.cpu import Cpu, StopReason
from repro.target.firmware import FirmwareImage, SymbolTable
from repro.target.isa import Instr, OPCODES, cycles_of
from repro.target.memory import RAM_BASE, MemoryMap
from repro.target.peripherals import Gpio, Uart
from repro.util.intmath import INT_MAX, INT_MIN


def make_cpu(code, ram_words=64):
    memory = MemoryMap(ram_words)
    cpu = Cpu(memory, Gpio())
    cpu.load(code)
    cpu.reset_task(0)
    return cpu, memory


def run_program(instrs, ram_words=64):
    cpu, memory = make_cpu(instrs, ram_words)
    result = cpu.run()
    return cpu, memory, result


class TestIsa:
    def test_instr_requires_declared_arg(self):
        with pytest.raises(AssemblyError):
            Instr("PUSH")          # missing arg
        with pytest.raises(AssemblyError):
            Instr("ADD", 3)        # spurious arg
        with pytest.raises(AssemblyError):
            Instr("FLY", 1)        # unknown opcode

    def test_every_opcode_has_positive_cycles(self):
        for op in OPCODES:
            assert cycles_of(op) >= 1


class TestArithmetic:
    def test_push_add_store(self):
        cpu, memory, result = run_program([
            Instr("PUSH", 2), Instr("PUSH", 3), Instr("ADD"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 5
        assert result.reason is StopReason.HALTED

    def test_division_truncates_toward_zero(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", -7), Instr("PUSH", 2), Instr("DIV"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == -3

    def test_overflow_wraps(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", INT_MAX), Instr("PUSH", 1), Instr("ADD"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == INT_MIN

    def test_divide_by_zero_traps(self):
        cpu, _ = make_cpu([Instr("PUSH", 1), Instr("PUSH", 0), Instr("DIV"),
                           Instr("HALT")])
        with pytest.raises(TargetFault):
            cpu.run()

    def test_comparisons(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", 3), Instr("PUSH", 5), Instr("LT"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 1

    def test_min_max(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", 3), Instr("PUSH", 5), Instr("MAX"),
            Instr("PUSH", 4), Instr("MIN"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 4


class TestStackAndControl:
    def test_dup_swap_pop(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", 1), Instr("PUSH", 2), Instr("SWAP"),
            Instr("DUP"), Instr("POP"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 1  # swapped: top was 1

    def test_stack_underflow_traps(self):
        cpu, _ = make_cpu([Instr("ADD"), Instr("HALT")])
        with pytest.raises(TargetFault):
            cpu.run()

    def test_stack_overflow_traps(self):
        cpu, _ = make_cpu([Instr("PUSH", 1), Instr("DUP"), Instr("JMP", 1)])
        with pytest.raises(TargetFault):
            cpu.run(max_instructions=1000)

    def test_conditional_jump(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", 0), Instr("JZ", 4),
            Instr("PUSH", 111), Instr("JMP", 5),
            Instr("PUSH", 222),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 222

    def test_jump_out_of_range_traps(self):
        cpu, _ = make_cpu([Instr("JMP", 999)])
        with pytest.raises(TargetFault):
            cpu.run()

    def test_instruction_budget(self):
        cpu, _ = make_cpu([Instr("JMP", 0)])
        result = cpu.run(max_instructions=10)
        assert result.reason is StopReason.LIMIT
        assert result.instructions == 10

    def test_indirect_load_store(self):
        cpu, memory, _ = run_program([
            Instr("PUSH", 42), Instr("PUSH", RAM_BASE + 3), Instr("STI"),
            Instr("PUSH", RAM_BASE + 3), Instr("LDI"),
            Instr("STORE", RAM_BASE), Instr("HALT"),
        ])
        assert memory.peek(RAM_BASE) == 42

    def test_cycles_accumulate_per_spec(self):
        cpu, _, result = run_program([Instr("PUSH", 1), Instr("HALT")])
        assert result.cycles == cycles_of("PUSH") + cycles_of("HALT")


class TestOpcodeProfile:
    LOOP = [Instr("LOAD", RAM_BASE), Instr("PUSH", 1), Instr("ADD"),
            Instr("STORE", RAM_BASE), Instr("LOAD", RAM_BASE),
            Instr("PUSH", 5), Instr("LT"), Instr("JNZ", 0), Instr("HALT")]

    def test_profile_counts_plain_opcodes(self):
        from repro.target.isa import profile_names
        cpu, _ = make_cpu(self.LOOP)
        counts = {}
        result = cpu.run(profile=counts)
        assert result.reason is StopReason.HALTED
        named = profile_names(counts)
        # 5 loop rounds x {LOAD:2, PUSH:2, ADD, STORE, LT, JNZ} + HALT
        assert named["LOAD"] == 10 and named["PUSH"] == 10
        assert named["ADD"] == named["STORE"] == named["LT"] == 5
        assert named["HALT"] == 1
        assert sum(counts.values()) == result.instructions

    def test_profile_counts_constituents_not_superinstructions(self):
        # fusion is on by default; the profile must still speak plain ISA
        cpu, _ = make_cpu(self.LOOP)
        assert cpu.fused_rows > 0
        counts = {}
        cpu.run(profile=counts)
        from repro.target.isa import OPCODES
        assert all(op < len(OPCODES) for op in counts)

    def test_profile_unset_is_untouched_and_identical(self):
        plain_cpu, _ = make_cpu(self.LOOP)
        profiled_cpu, _ = make_cpu(self.LOOP)
        r1 = plain_cpu.run()
        r2 = profiled_cpu.run(profile={})
        assert (r1.instructions, r1.cycles) == (r2.instructions, r2.cycles)


class TestMemoryMap:
    def test_out_of_range_access_traps(self):
        memory = MemoryMap(16)
        with pytest.raises(TargetFault):
            memory.read_word(RAM_BASE + 16)
        with pytest.raises(TargetFault):
            memory.read_word(RAM_BASE - 1)

    def test_access_counters(self):
        memory = MemoryMap(16)
        memory.write_word(RAM_BASE, 1)
        memory.read_word(RAM_BASE)
        memory.peek(RAM_BASE)   # must not count
        assert (memory.reads, memory.writes) == (1, 1)

    def test_reset_reapplies_init_image(self):
        memory = MemoryMap(16)
        memory.load_init_image({RAM_BASE + 2: 7})
        memory.write_word(RAM_BASE + 2, 99)
        memory.reset()
        assert memory.peek(RAM_BASE + 2) == 7

    def test_write_hook_fires(self):
        memory = MemoryMap(16)
        seen = []
        memory.set_write_hook(lambda addr, value: seen.append((addr, value)))
        memory.write_word(RAM_BASE + 1, 5)
        memory.poke(RAM_BASE + 2, 6)  # poke must NOT fire the hook
        assert seen == [(RAM_BASE + 1, 5)]


class TestAssembler:
    def test_labels_resolve_forward_and_backward(self):
        asm = Assembler()
        asm.label("top")
        asm.emit("PUSH", 0)
        asm.emit_jump("JZ", "end")
        asm.emit_jump("JMP", "top")
        asm.label("end")
        asm.emit("HALT")
        code = asm.assemble()
        assert code[1].arg == 3   # "end"
        assert code[2].arg == 0   # "top"

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.emit_jump("JMP", "nowhere")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_non_jump_via_emit_jump_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.emit_jump("ADD", "x")

    def test_fresh_labels_unique(self):
        asm = Assembler()
        labels = {asm.fresh_label() for _ in range(10)}
        assert len(labels) == 10

    def test_disassemble_marks_pc(self):
        code = [Instr("PUSH", 1), Instr("HALT")]
        listing = disassemble(code, mark_pc=1)
        assert "=>" in listing and "HALT" in listing


class TestSymbolsAndFirmware:
    def test_allocation_is_sequential(self):
        table = SymbolTable()
        a = table.allocate("a")
        b = table.allocate("b")
        assert b.addr == a.addr + 1

    def test_duplicate_symbol_rejected(self):
        table = SymbolTable()
        table.allocate("a")
        with pytest.raises(Exception):
            table.allocate("a")

    def test_lookup_by_name_and_addr(self):
        table = SymbolTable()
        symbol = table.allocate("x", kind="output")
        assert table.addr_of("x") == symbol.addr
        assert table.at_addr(symbol.addr) is symbol
        assert table.symbols(kind="output") == [symbol]

    def test_firmware_entry_validation(self):
        table = SymbolTable()
        with pytest.raises(AssemblyError):
            FirmwareImage("fw", [Instr("HALT")], {"task": 5}, table, {})

    def test_firmware_path_tables(self):
        table = SymbolTable()
        fw = FirmwareImage("fw", [Instr("HALT")], {"t": 0}, table, {},
                           path_table={1: "state:a.b.S"})
        assert fw.path_of_id(1) == "state:a.b.S"
        assert fw.id_of_path("state:a.b.S") == 1


class TestBoard:
    def test_cycles_to_us_at_clock(self):
        board = Board(clock_hz=1_000_000)  # 1 cycle == 1 us
        assert board.cycles_to_us(42) == 42

    def test_run_task_without_firmware_traps(self):
        with pytest.raises(TargetFault):
            Board().run_task("t")

    def test_debug_port_reads_do_not_count_target_accesses(self):
        board = Board()
        port = DebugPort(board)
        port.read_word(RAM_BASE)
        assert board.memory.reads == 0
        assert port.reads == 1

    def test_debug_port_halt_resume(self):
        board = Board()
        port = DebugPort(board)
        port.halt()
        assert board.stalled and port.is_halted
        port.resume()
        assert not board.stalled


class TestUart:
    def test_fifo_accounting(self):
        uart = Uart(fifo_depth=8)
        assert uart.push_bytes(b"12345")
        assert uart.pending == 5
        assert uart.pop_byte() == ord("1")

    def test_atomic_overrun(self):
        uart = Uart(fifo_depth=4)
        assert not uart.push_bytes(b"12345")
        assert uart.overruns == 1
        assert uart.pending == 0  # nothing partially queued

    def test_underrun_traps(self):
        with pytest.raises(TargetFault):
            Uart().pop_byte()
