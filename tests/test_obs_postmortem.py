"""Automated post-mortems for failed campaign jobs.

Contract (``repro/obs/postmortem.py``): a failed
:class:`~repro.fleet.jobs.JobResult` renders to a self-contained text
artifact — failure type/message, extracted fault pc (for
``TargetFault`` deaths), the tail of the job's sealed per-job trace
store (most recent first), transport/chaos counters at time of death,
and the worker traceback. Everything comes from data the fleet already
ships; no new wire formats.
"""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import (
    SerialRunner,
    callable_ref,
    enumerate_campaign_jobs,
    merge_results,
)
from repro.fleet.jobs import JobResult, JobSpec
from repro.codegen import InstrumentationPlan
from repro.obs import MetricsRegistry
from repro.obs.postmortem import (
    campaign_postmortem,
    fault_pc_of,
    job_postmortem,
)
from repro.tracedb import job_store_root
from repro.util.timeunits import sec


def raising_system():
    """Importable module-level factory that dies inside the worker."""
    raise RuntimeError("synthetic postmortem explosion")


class TestFaultPc:
    def test_extracts_pc_from_target_fault(self):
        error = {"type": "TargetFault",
                 "message": "target fault at pc=42: stack underflow"}
        assert fault_pc_of(error) == 42

    def test_other_types_and_missing_pc(self):
        assert fault_pc_of(None) is None
        assert fault_pc_of({"type": "RuntimeError",
                            "message": "pc=42 red herring"}) is None
        assert fault_pc_of({"type": "TargetFault",
                            "message": "no pc here"}) is None
        assert fault_pc_of({"type": "TargetFault",
                            "message": "target fault at pc=-1: boot"}) is None


@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    trace_dir = str(tmp_path_factory.mktemp("obs_pm") / "t")
    run_campaign(traffic_light_system, traffic_light_monitor_suite,
                 traffic_light_code_watches, runner=SerialRunner(),
                 trace_dir=trace_dir, design_kinds=("wrong_target",),
                 impl_kinds=(), seeds=(1,), duration_us=sec(1))
    return trace_dir


def fake_target_fault(trace_dir, index=1):
    return JobResult(
        index, "design/wrong_target/1",
        error={"type": "TargetFault",
               "message": "target fault at pc=42: stack underflow",
               "traceback": ("Traceback (most recent call last):\n"
                             "  ...\n"
                             "TargetFault: target fault at pc=42\n")},
        trace_path=job_store_root(trace_dir, index))


class TestJobPostmortem:
    def test_sections_present(self, traced_campaign):
        reg = MetricsRegistry()
        reg.counter("transport.transactions").inc(9)
        reg.counter("chaos.fault", plane="mem", fault="transient").inc(2)
        reg.counter("unrelated.series").inc(5)
        text = job_postmortem(fake_target_fault(traced_campaign),
                              metrics=reg.snapshot(), tail=5)
        assert "POST-MORTEM  job #1  design/wrong_target/1" in text
        assert "TargetFault: target fault at pc=42" in text
        assert "fault pc   : 42" in text
        assert "last model events" in text
        assert "seq=" in text  # real events streamed from the store
        assert "transport.transactions = 9" in text
        assert "chaos.fault{fault=transient,plane=mem} = 2" in text
        assert "unrelated.series" not in text
        assert "worker traceback:" in text

    def test_tail_is_most_recent_first_and_bounded(self, traced_campaign):
        text = job_postmortem(fake_target_fault(traced_campaign), tail=3)
        seqs = [int(line.split("seq=")[1].split()[0])
                for line in text.splitlines() if "seq=" in line]
        assert len(seqs) == 3
        assert seqs == sorted(seqs, reverse=True)
        assert "earlier event(s) in the store" in text

    def test_job_without_store(self):
        result = JobResult(0, "control",
                           error={"type": "RuntimeError", "message": "boom",
                                  "traceback": ""})
        text = job_postmortem(result)
        assert "RuntimeError: boom" in text
        assert "job collected no trace" in text

    def test_non_failure_renders_gracefully(self):
        text = job_postmortem(JobResult(0, "control"))
        assert "completed normally" in text


class TestCampaignPostmortem:
    def test_real_failures_via_lenient_merge(self):
        specs = list(enumerate_campaign_jobs(
            traffic_light_system, traffic_light_monitor_suite,
            traffic_light_code_watches, design_kinds=(), impl_kinds=(),
            seeds=(), duration_us=sec(1), plan=InstrumentationPlan.full()))
        specs.append(JobSpec(
            len(specs), "design", "wrong_target", 1, sec(1),
            "test_obs_postmortem:raising_system",
            callable_ref(traffic_light_monitor_suite),
            callable_ref(traffic_light_code_watches),
            InstrumentationPlan.full()))
        results = SerialRunner().run(specs)
        merged = merge_results(specs, results, strict=False)
        assert len(merged.failures) == 1
        text = campaign_postmortem(merged.failures,
                                   total_jobs=len(specs))
        assert "CAMPAIGN POST-MORTEM: 1 failed job(s) of 2" in text
        assert "RuntimeError: synthetic postmortem explosion" in text
        assert "raising_system" in text  # worker traceback included

    def test_no_failures(self):
        assert "all jobs completed" in campaign_postmortem([])

    def test_ordered_by_index(self, traced_campaign):
        a = fake_target_fault(traced_campaign, index=1)
        b = JobResult(0, "control",
                      error={"type": "RuntimeError", "message": "x",
                             "traceback": ""})
        text = campaign_postmortem([a, b])
        assert text.index("job #0") < text.index("job #1")
