"""Tests for component networks, composite and modal blocks."""

import pytest

from repro.comdes.blocks import (
    AddFB, ConstantFB, DelayFB, GainFB, SequenceFB, SubFB,
)
from repro.comdes.composite import CompositeFB
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.modal import ModalFB, Mode
from repro.errors import ModelError, ValidationError


def adder_network() -> ComponentNetwork:
    """(a + b) * 2 with an explicit gain block."""
    return ComponentNetwork(
        name="adder",
        blocks=[AddFB("sum"), GainFB("double", num=2)],
        connections=[Connection.wire("sum.y", "double.u")],
        input_ports={"a": [PortRef("sum", "a")], "b": [PortRef("sum", "b")]},
        output_ports={"y": PortRef("double", "y")},
    )


def counter_network() -> ComponentNetwork:
    """A feedback counter: y[k] = y[k-1] + 1, broken by a delay block."""
    return ComponentNetwork(
        name="counter",
        blocks=[DelayFB("z"), AddFB("inc"), ConstantFB("one", 1)],
        connections=[
            Connection.wire("z.y", "inc.a"),
            Connection.wire("one.y", "inc.b"),
            Connection.wire("inc.y", "z.u"),
        ],
        input_ports={},
        output_ports={"count": PortRef("inc", "y")},
    )


class TestWiring:
    def test_simple_network_steps(self):
        outs = adder_network().run([{"a": 2, "b": 3}, {"a": 10, "b": -4}])
        assert [o["y"] for o in outs] == [10, 12]

    def test_duplicate_block_names_rejected(self):
        with pytest.raises(ValidationError):
            ComponentNetwork("n", blocks=[AddFB("x"), AddFB("x")],
                             input_ports={"a": [PortRef("x", "a")],
                                          "b": [PortRef("x", "b")]},
                             output_ports={})

    def test_unknown_block_in_connection_rejected(self):
        with pytest.raises(ValidationError):
            ComponentNetwork(
                "n", blocks=[AddFB("sum")],
                connections=[Connection.wire("ghost.y", "sum.a")],
                input_ports={"b": [PortRef("sum", "b")]},
                output_ports={},
            )

    def test_unknown_port_rejected(self):
        with pytest.raises(ValidationError):
            ComponentNetwork(
                "n", blocks=[AddFB("sum"), ConstantFB("k", 1)],
                connections=[Connection.wire("k.y", "sum.nope")],
                input_ports={"a": [PortRef("sum", "a")],
                             "b": [PortRef("sum", "b")]},
                output_ports={},
            )

    def test_double_driven_input_rejected(self):
        with pytest.raises(ValidationError):
            ComponentNetwork(
                "n", blocks=[ConstantFB("k1", 1), ConstantFB("k2", 2),
                             GainFB("g", num=1)],
                connections=[Connection.wire("k1.y", "g.u"),
                             Connection.wire("k2.y", "g.u")],
                output_ports={},
            )

    def test_unconnected_input_rejected(self):
        with pytest.raises(ValidationError):
            ComponentNetwork("n", blocks=[AddFB("sum")], output_ports={})

    def test_missing_network_input_value_raises(self):
        net = adder_network()
        with pytest.raises(ModelError):
            net.step({"a": 1}, net.initial_state())

    def test_portref_parse(self):
        ref = PortRef.parse("block.port")
        assert (ref.block, ref.port) == ("block", "port")
        with pytest.raises(ModelError):
            PortRef.parse("no_dot")


class TestCyclesAndOrder:
    def test_combinational_cycle_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            ComponentNetwork(
                "loop", blocks=[AddFB("a"), GainFB("g", num=1)],
                connections=[Connection.wire("a.y", "g.u"),
                             Connection.wire("g.y", "a.a")],
                input_ports={"seed": [PortRef("a", "b")]},
                output_ports={},
            )
        assert "DelayFB" in str(excinfo.value)

    def test_delay_breaks_cycle(self):
        outs = counter_network().run([{}] * 5)
        assert [o["count"] for o in outs] == [1, 2, 3, 4, 5]

    def test_evaluation_order_moore_first(self):
        order = counter_network().evaluation_order()
        assert order.index("z") < order.index("inc")
        assert order.index("one") < order.index("inc")

    def test_stimulus_sequence_advances_without_inputs(self):
        net = ComponentNetwork(
            "stim", blocks=[SequenceFB("s", values=[7, 8, 9])],
            output_ports={"y": PortRef("s", "y")},
        )
        assert [o["y"] for o in net.run([{}] * 3)] == [7, 8, 9]

    def test_fan_out_from_network_input(self):
        net = ComponentNetwork(
            "fan", blocks=[AddFB("sum")],
            input_ports={"u": [PortRef("sum", "a"), PortRef("sum", "b")]},
            output_ports={"y": PortRef("sum", "y")},
        )
        assert net.run([{"u": 3}])[0]["y"] == 6


class TestCompositeBlock:
    def test_composite_exposes_boundary_ports(self):
        block = CompositeFB("comp", adder_network())
        assert block.inputs == ["a", "b"]
        assert block.outputs == ["y"]

    def test_composite_matches_inner_network(self):
        inner = adder_network()
        block = CompositeFB("comp", adder_network())
        state = block.state_vars()
        out, state = block.behavior({"a": 2, "b": 3}, state)
        assert out == inner.run([{"a": 2, "b": 3}])[0]

    def test_composite_preserves_inner_state(self):
        block = CompositeFB("comp", counter_network())
        state = block.state_vars()
        values = []
        for _ in range(4):
            out, state = block.behavior({}, state)
            values.append(out["count"])
        assert values == [1, 2, 3, 4]

    def test_composite_nests_in_network(self):
        net = ComponentNetwork(
            "outer",
            blocks=[CompositeFB("inner_counter", counter_network()),
                    GainFB("scale", num=10)],
            connections=[Connection.wire("inner_counter.count", "scale.u")],
            output_ports={"y": PortRef("scale", "y")},
        )
        assert [o["y"] for o in net.run([{}] * 3)] == [10, 20, 30]


def two_mode_modal() -> ModalFB:
    """Mode 0 doubles the input; mode 1 is a counter ignoring the input."""
    double_net = ComponentNetwork(
        "double", blocks=[GainFB("g", num=2)],
        input_ports={"u": [PortRef("g", "u")]},
        output_ports={"y": PortRef("g", "y")},
    )
    count_net = ComponentNetwork(
        "count",
        blocks=[DelayFB("z"), AddFB("inc"), ConstantFB("one", 1)],
        connections=[
            Connection.wire("z.y", "inc.a"),
            Connection.wire("one.y", "inc.b"),
            Connection.wire("inc.y", "z.u"),
        ],
        input_ports={"u": []},  # declared but unused
        output_ports={"y": PortRef("inc", "y")},
    )
    return ModalFB("modal", modes=[Mode("DOUBLE", double_net),
                                   Mode("COUNT", count_net)])


class TestModalBlock:
    def test_ports_include_selector(self):
        block = two_mode_modal()
        assert block.inputs == ["mode", "u"]
        assert block.outputs == ["y"]

    def test_mode_switching(self):
        block = two_mode_modal()
        state = block.state_vars()
        out0, state = block.behavior({"mode": 0, "u": 21}, state)
        out1, state = block.behavior({"mode": 1, "u": 21}, state)
        assert out0["y"] == 42
        assert out1["y"] == 1

    def test_inactive_mode_state_frozen(self):
        block = two_mode_modal()
        state = block.state_vars()
        _, state = block.behavior({"mode": 1, "u": 0}, state)  # count -> 1
        _, state = block.behavior({"mode": 0, "u": 5}, state)  # doubling
        out, state = block.behavior({"mode": 1, "u": 0}, state)  # count resumes
        assert out["y"] == 2

    def test_selector_clamped(self):
        block = two_mode_modal()
        state = block.state_vars()
        out, _ = block.behavior({"mode": 99, "u": 0}, state)  # clamps to COUNT
        assert out["y"] == 1

    def test_mismatched_mode_signatures_rejected(self):
        a = ComponentNetwork("a", blocks=[GainFB("g", num=1)],
                             input_ports={"u": [PortRef("g", "u")]},
                             output_ports={"y": PortRef("g", "y")})
        b = ComponentNetwork("b", blocks=[ConstantFB("k", 1)],
                             output_ports={"out": PortRef("k", "y")})
        with pytest.raises(ModelError):
            ModalFB("bad", modes=[Mode("A", a), Mode("B", b)])

    def test_empty_modes_rejected(self):
        with pytest.raises(ModelError):
            ModalFB("bad", modes=[])

    def test_reserved_port_name_rejected(self):
        net = ComponentNetwork("n", blocks=[GainFB("g", num=1)],
                               input_ports={"mode": [PortRef("g", "u")]},
                               output_ports={"y": PortRef("g", "y")})
        with pytest.raises(ModelError):
            ModalFB("bad", modes=[Mode("A", net)])
