"""Lockstep proof that the batch tier (SoA cohorts) is observably invisible.

:class:`~repro.target.batch.BatchCpu` executes N identical-firmware
lanes in SoA lockstep; the contract (``repro/target/__init__.py``) is
that batch execution is **bit-identical** to N serial ``Cpu`` runs at
every stop — ``pc``, ``cycles``, ``instructions``, stack, RAM,
``emit_log``, read/write counters and fault pcs — including lanes that
peel to scalar mid-cohort (fault, armed emit handler, breakpoint,
divergence past the re-convergence window) and lanes stopped by
per-lane LIMIT budgets. Randomized cohorts reuse the codegen-shaped
program generator from ``test_superinstructions``; the serial
reference runs *fused* (the production serial path), which also
re-proves fusion timing-identity against a third decoding.

One level up, :class:`~repro.fleet.batch.BatchRunner` must produce
byte-identical campaign results to :class:`~repro.fleet.SerialRunner`
through the canonical merge, and firmware fingerprints must group
exactly the jobs that share an image.
"""

import pytest
from hypothesis import given, settings, strategies as st

from test_superinstructions import (
    RAM_WORDS,
    RUN_LIMIT,
    STACK_DEPTH,
    assemble_program,
    snap,
    snippets,
)

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.errors import FleetError, TargetFault
from repro.experiments.requirements import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults import run_campaign
from repro.fleet import (
    BatchRunner,
    SerialRunner,
    enumerate_campaign_jobs,
)
from repro.fleet.batch import BoardCohort, cohorts_of, firmware_fingerprint
from repro.target.batch import BatchCpu, LaneOutcome
from repro.target.board import Board
from repro.target.cpu import Cpu, StopReason
from repro.target.isa import Instr
from repro.target.memory import RAM_BASE, MemoryMap
from repro.util.timeunits import sec

cell_value = st.integers(-(2 ** 31), 2 ** 31 - 1)


def make_lanes(code, fills, fuse=True, depth=STACK_DEPTH):
    """One Cpu per RAM fill, all loaded with *code*, reset at entry 0."""
    cpus = []
    for cells in fills:
        cpu = Cpu(MemoryMap(RAM_WORDS), stack_depth=depth, fuse=fuse)
        cpu.load(code)
        cpu.memory.cells[:len(cells)] = list(cells)
        cpu.reset_task(0)
        cpus.append(cpu)
    return cpus


def serial_outcome(cpu, limit):
    """The serial reference: one run; faults are part of the outcome."""
    try:
        result = cpu.run(max_instructions=limit)
        return (result.reason, result.instructions, result.cycles)
    except TargetFault as fault:
        return ("fault", fault.reason, fault.pc)


def batch_outcome(lane_outcome):
    if lane_outcome.fault is not None:
        return ("fault", lane_outcome.fault.reason, lane_outcome.fault.pc)
    result = lane_outcome.result
    return (result.reason, result.instructions, result.cycles)


def assert_cohort_matches(serial, batch_lanes, outs_s, outs_b):
    assert len(outs_s) == len(outs_b)
    for lane, (ref, cpu) in enumerate(zip(serial, batch_lanes)):
        assert batch_outcome(outs_b[lane]) == outs_s[lane], lane
        assert snap(cpu) == snap(ref), lane


# -- lockstep properties -----------------------------------------------------

class TestLockstepProperties:
    @settings(max_examples=30, deadline=None)
    @given(snips=snippets, data=st.data())
    def test_random_cohort_matches_serial_runs(self, snips, data):
        """Random cohorts over random per-lane RAM images, random
        divergence policy, and emit handlers armed on a random subset of
        lanes (which forces those lanes to peel at their first EMIT)."""
        code = assemble_program(snips)
        nl = data.draw(st.integers(2, 6), label="lanes")
        fills = data.draw(st.lists(
            st.lists(cell_value, min_size=RAM_WORDS, max_size=RAM_WORDS),
            min_size=nl, max_size=nl), label="fills")
        window = data.draw(st.sampled_from([0, 3, 4096]), label="window")
        min_lanes = data.draw(st.integers(1, 3), label="min_lanes")
        handler_lanes = data.draw(st.lists(
            st.integers(0, nl - 1), unique=True, max_size=nl),
            label="handler_lanes")

        serial = make_lanes(code, fills)
        batch_lanes = make_lanes(code, fills)
        seen = {"serial": [], "batch": []}
        for side, cpus in (("serial", serial), ("batch", batch_lanes)):
            for lane in handler_lanes:
                cpu = cpus[lane]
                cpus[lane].emit_handler = (
                    lambda kind, pid, value, _s=side, _l=lane, _c=cpu:
                    seen[_s].append((_l, kind, pid, value, _c.cycles)))

        outs_s = [serial_outcome(cpu, RUN_LIMIT) for cpu in serial]
        batch = BatchCpu(batch_lanes, reconverge_window=window,
                         min_lanes=min_lanes)
        outs_b = batch.run(RUN_LIMIT)
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)
        # handlers observed the same commands at the same cycle counts
        # (batch may interleave lanes differently, so compare per lane)
        for lane in handler_lanes:
            pick = lambda rows: [r for r in rows if r[0] == lane]
            assert pick(seen["serial"]) == pick(seen["batch"])

    @settings(max_examples=30, deadline=None)
    @given(snips=snippets, data=st.data())
    def test_per_lane_budgets_and_chunked_resume(self, snips, data):
        """Random per-lane LIMIT budgets applied in chunks: every stop —
        including lanes re-absorbed mid-program and lanes that already
        halted or faulted — must match the serial chunked run."""
        code = assemble_program(snips)
        nl = data.draw(st.integers(2, 5), label="lanes")
        fills = data.draw(st.lists(
            st.lists(cell_value, min_size=RAM_WORDS, max_size=RAM_WORDS),
            min_size=nl, max_size=nl), label="fills")
        serial = make_lanes(code, fills)
        batch_lanes = make_lanes(code, fills)
        batch = BatchCpu(batch_lanes)
        chunks = data.draw(st.integers(1, 5), label="chunks")
        for _ in range(chunks):
            limits = data.draw(st.lists(st.integers(1, 40),
                                        min_size=nl, max_size=nl),
                               label="limits")
            outs_s = []
            for cpu, limit in zip(serial, limits):
                if cpu.halted:
                    outs_s.append((StopReason.HALTED, 0, 0))
                    continue
                outs_s.append(serial_outcome(cpu, limit))
            outs_b = batch.run(limits=limits)
            assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)

    @settings(max_examples=25, deadline=None)
    @given(divisors=st.lists(st.integers(-2, 2), min_size=2, max_size=8),
           data=st.data())
    def test_per_lane_faults_peel_with_serial_fault_pcs(self, divisors, data):
        """Lanes whose RAM-fed divisor is zero must fault at the exact
        serial pc with serial counters, while clean lanes finish batched."""
        code = _divider_loop()
        fills = [[seed, 0, 0, div] for seed, div in
                 zip(data.draw(st.lists(st.integers(0, 500),
                                        min_size=len(divisors),
                                        max_size=len(divisors))), divisors)]
        serial = make_lanes(code, fills)
        batch_lanes = make_lanes(code, fills)
        outs_s = [serial_outcome(cpu, RUN_LIMIT) for cpu in serial]
        batch = BatchCpu(batch_lanes)
        outs_b = batch.run(RUN_LIMIT)
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)
        if any(div == 0 for div in divisors):
            assert batch.stats["peels"] >= 1
            faulted = [o for o in outs_b if o.fault is not None]
            assert faulted and all(o.peeled for o in faulted)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_run_jobs_matches_serial_campaign_loop(self, data):
        """The activation loop: reset + run x jobs, with faulting lanes
        rejoining the columnar pool at every reset."""
        nl = data.draw(st.integers(2, 6), label="lanes")
        divisors = data.draw(st.lists(st.integers(0, 2), min_size=nl,
                                      max_size=nl), label="divisors")
        jobs = data.draw(st.integers(1, 4), label="jobs")
        code = _divider_loop()
        fills = [[lane + 1, 0, 0, div]
                 for lane, div in enumerate(divisors)]
        serial = make_lanes(code, fills)
        batch_lanes = make_lanes(code, fills)
        outs_s = []
        for _ in range(jobs):
            per = []
            for cpu in serial:
                cpu.reset_task(0)
                per.append(serial_outcome(cpu, RUN_LIMIT))
            outs_s.append(per)
        batch = BatchCpu(batch_lanes)
        outs_b = batch.run_jobs(0, jobs, max_instructions=RUN_LIMIT)
        assert len(outs_b) == jobs
        for per_s, per_b in zip(outs_s, outs_b):
            assert [batch_outcome(o) for o in per_b] == per_s
        for ref, cpu in zip(serial, batch_lanes):
            assert snap(cpu) == snap(ref)


def _divider_loop():
    """50 rounds of ``acc = acc / m[3]`` — m[3] = 0 faults at pc 8."""
    return [
        Instr("PUSH", 0), Instr("STORE", RAM_BASE + 1),
        Instr("LOAD", RAM_BASE + 1), Instr("PUSH", 50), Instr("LT"),
        Instr("JZ", 15),
        Instr("LOAD", RAM_BASE), Instr("LOAD", RAM_BASE + 3),
        Instr("DIV"), Instr("STORE", RAM_BASE),
        Instr("LOAD", RAM_BASE + 1), Instr("PUSH", 1), Instr("ADD"),
        Instr("STORE", RAM_BASE + 1),
        Instr("JMP", 2),
        Instr("PUSH", 7), Instr("LOAD", RAM_BASE), Instr("EMIT", 2),
        Instr("HALT"),
    ]


# count to a per-lane bound in m[2], mixing m[0], then report and halt
_BOUNDED = [
    Instr("PUSH", 0), Instr("STORE", RAM_BASE + 1),
    Instr("LOAD", RAM_BASE + 1), Instr("LOAD", RAM_BASE + 2),   # 2..3
    Instr("LT"), Instr("JZ", 16),                               # 4..5
    Instr("LOAD", RAM_BASE), Instr("PUSH", 3), Instr("MUL"),    # 6..8
    Instr("PUSH", 1000), Instr("MOD"), Instr("STORE", RAM_BASE),  # 9..11
    Instr("LOAD", RAM_BASE + 1), Instr("PUSH", 1), Instr("ADD"),  # 12..14
    Instr("STORE", RAM_BASE + 1),                               # 15
    Instr("JMP", 2),                                            # 16 -> loop
    Instr("PUSH", 7), Instr("LOAD", RAM_BASE), Instr("EMIT", 2),
    Instr("HALT"),
]
_BOUNDED[5] = Instr("JZ", 17)


# -- deterministic edges -----------------------------------------------------

class TestCohortValidation:
    def test_empty_cohort_rejected(self):
        with pytest.raises(TargetFault, match="at least one"):
            BatchCpu([])

    def test_firmware_mismatch_rejected(self):
        a = make_lanes(_divider_loop(), [[1, 0, 0, 1]])[0]
        b = make_lanes(_BOUNDED, [[1, 0, 5]])[0]
        with pytest.raises(TargetFault, match="firmware"):
            BatchCpu([a, b])

    def test_ram_size_mismatch_rejected(self):
        code = _divider_loop()
        a = make_lanes(code, [[1, 0, 0, 1]])[0]
        b = Cpu(MemoryMap(RAM_WORDS + 1), stack_depth=STACK_DEPTH)
        b.load(code)
        with pytest.raises(TargetFault, match="RAM"):
            BatchCpu([a, b])

    def test_stack_depth_mismatch_rejected(self):
        code = _divider_loop()
        a = make_lanes(code, [[1, 0, 0, 1]])[0]
        b = Cpu(MemoryMap(RAM_WORDS), stack_depth=STACK_DEPTH + 1)
        b.load(code)
        with pytest.raises(TargetFault, match="stack"):
            BatchCpu([a, b])

    def test_run_jobs_bad_entry_rejected(self):
        lanes = make_lanes(_divider_loop(), [[1, 0, 0, 1]] * 2)
        with pytest.raises(TargetFault, match="entry"):
            BatchCpu(lanes).run_jobs(99, 1)

    def test_mismatched_limits_rejected(self):
        lanes = make_lanes(_divider_loop(), [[1, 0, 0, 1]] * 2)
        with pytest.raises(TargetFault, match="limits"):
            BatchCpu(lanes).run(limits=[10])


class TestDivergencePolicy:
    def _divergent(self, bounds):
        fills = [[seed, 0, bound]
                 for seed, bound in zip(range(1, len(bounds) + 1), bounds)]
        serial = make_lanes(_BOUNDED, fills)
        batch_lanes = make_lanes(_BOUNDED, fills)
        outs_s = [serial_outcome(cpu, RUN_LIMIT) for cpu in serial]
        return serial, batch_lanes, outs_s

    def test_divergent_bounds_split_and_remerge(self):
        bounds = [10, 10, 40, 40, 40, 90, 90, 90]
        serial, batch_lanes, outs_s = self._divergent(bounds)
        batch = BatchCpu(batch_lanes)
        outs_b = batch.run(RUN_LIMIT)
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)
        assert batch.stats["splits"] >= 1
        assert batch.stats["merges"] >= 1

    def test_zero_window_peels_divergent_lanes(self):
        serial, batch_lanes, outs_s = self._divergent([5, 80])
        batch = BatchCpu(batch_lanes, reconverge_window=0)
        outs_b = batch.run(RUN_LIMIT)
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)
        assert batch.stats["peels"] >= 1
        assert any(o.peeled for o in outs_b)

    def test_min_lanes_one_keeps_singletons_batched(self):
        serial, batch_lanes, outs_s = self._divergent([5, 80, 200])
        batch = BatchCpu(batch_lanes, min_lanes=1)
        outs_b = batch.run(RUN_LIMIT)
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)
        assert batch.stats["peels"] == 0

    def test_halted_lane_reports_halted_without_running(self):
        lanes = make_lanes(_BOUNDED, [[1, 0, 5], [2, 0, 5]])
        lanes[0].halted = True
        before = snap(lanes[0])
        outs = BatchCpu(lanes).run(RUN_LIMIT)
        assert outs[0].result.reason is StopReason.HALTED
        assert outs[0].result.instructions == 0
        assert snap(lanes[0]) == before

    def test_breakpointed_lane_stops_at_breakpoint_scalar(self):
        fills = [[1, 0, 5], [2, 0, 5]]
        serial = make_lanes(_BOUNDED, fills)
        batch_lanes = make_lanes(_BOUNDED, fills)
        for cpus in (serial, batch_lanes):
            cpus[0].breakpoints.add(6)
        outs_s = []
        for cpu in serial:
            result = cpu.run(max_instructions=RUN_LIMIT,
                             break_on_breakpoints=True)
            outs_s.append((result.reason, result.instructions,
                           result.cycles))
        outs_b = BatchCpu(batch_lanes).run(RUN_LIMIT,
                                           break_on_breakpoints=True)
        assert outs_b[0].result.reason is StopReason.BREAKPOINT
        assert outs_b[0].peeled
        assert outs_b[1].result.reason is StopReason.HALTED
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)

    def test_breakpoints_ignored_without_the_flag_like_serial_run(self):
        fills = [[1, 0, 5], [2, 0, 5]]
        serial = make_lanes(_BOUNDED, fills)
        batch_lanes = make_lanes(_BOUNDED, fills)
        for cpus in (serial, batch_lanes):
            cpus[0].breakpoints.add(6)
        outs_s = [serial_outcome(cpu, RUN_LIMIT) for cpu in serial]
        outs_b = BatchCpu(batch_lanes).run(RUN_LIMIT)
        assert outs_b[0].result.reason is StopReason.HALTED
        assert not outs_b[0].peeled
        assert_cohort_matches(serial, batch_lanes, outs_s, outs_b)


# -- fleet wiring ------------------------------------------------------------

CAMPAIGN_KW = dict(
    design_kinds=("wrong_target",),
    impl_kinds=("store_drop",),
    comm_kinds=("frame_loss",),
    seeds=(1, 2),
    duration_us=sec(1),
)


def small_specs():
    return enumerate_campaign_jobs(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, plan=InstrumentationPlan.full(),
        **CAMPAIGN_KW)


class TestFirmwareFingerprint:
    def test_control_and_comm_share_the_pristine_image(self):
        specs = small_specs()
        control = [s for s in specs if s.category == "control"]
        comm = [s for s in specs if s.category == "comm"]
        assert control and comm
        keys = {firmware_fingerprint(s) for s in control + comm}
        assert len(keys) == 1

    def test_firmware_mutating_jobs_stay_singleton(self):
        specs = small_specs()
        mutating = [s for s in specs
                    if s.category in ("design", "implementation")]
        keys = [firmware_fingerprint(s) for s in mutating]
        assert len(set(keys)) == len(keys)
        base = firmware_fingerprint(
            next(s for s in specs if s.category == "control"))
        assert base not in keys

    def test_cohorts_preserve_canonical_order_and_cover_all_jobs(self):
        specs = small_specs()
        cohorts = cohorts_of(specs)
        indices = [s.index for _, members in cohorts for s in members]
        assert sorted(indices) == [s.index for s in specs]
        # first cohort is the pristine image: control + every comm job
        _, first = cohorts[0]
        assert {s.category for s in first} == {"control", "comm"}
        assert len(first) == 1 + len(CAMPAIGN_KW["comm_kinds"]) * len(
            CAMPAIGN_KW["seeds"])


class TestBatchRunnerCampaignParity:
    def test_batch_runner_equals_serial_runner(self):
        results = {}
        runner = BatchRunner()
        for name, r in (("serial", SerialRunner()), ("batch", runner)):
            results[name] = run_campaign(
                traffic_light_system, traffic_light_monitor_suite,
                traffic_light_code_watches, runner=r, **CAMPAIGN_KW)
        serial, batch = results["serial"], results["batch"]
        assert serial.summary_rows() == batch.summary_rows()
        assert len(serial.outcomes) == len(batch.outcomes)
        for a, b in zip(serial.outcomes, batch.outcomes):
            assert a.fault.fault_id == b.fault.fault_id
            assert (a.model_detected, a.code_detected, a.classified_as) == \
                (b.model_detected, b.code_detected, b.classified_as)
        # the runner actually grouped: pristine-image cohort + singletons
        assert runner.last_cohorts
        sizes = sorted(len(ix) for _, ix in runner.last_cohorts)
        assert sizes[-1] == 3  # control + 2 frame_loss seeds


class TestBoardCohort:
    def test_cohort_runs_bit_identical_to_serial_boards(self):
        firmware = generate_firmware(traffic_light_system())
        lanes = 8
        offsets = [lane % 7 for lane in range(lanes)]
        addr = firmware.symbols.addr_of("pedestrian.script.$idx")
        boards = []
        for lane in range(lanes):
            board = Board(ram_words=max(1, len(firmware.symbols)))
            board.load_firmware(firmware)
            board.memory.poke(addr, offsets[lane])
            boards.append(board)
        cohort = BoardCohort(firmware, lanes)
        cohort.poke_symbol("pedestrian.script.$idx", offsets)
        for task in firmware.entries:
            entry = firmware.entry_of(task)
            for board in boards:
                board.cpu.reset_task(entry)
                board.cpu.run(max_instructions=1_000_000)
            cohort.run_task(task)
        for board, cohort_board in zip(boards, cohort.boards):
            assert snap(cohort_board.cpu) == snap(board.cpu)

    def test_run_jobs_matches_per_job_run_task(self):
        firmware = generate_firmware(traffic_light_system())
        a = BoardCohort(firmware, 4)
        b = BoardCohort(firmware, 4)
        task = next(iter(firmware.entries))
        outs_a = [a.run_task(task) for _ in range(3)]
        outs_b = b.run_jobs(task, 3)
        assert [[batch_outcome(o) for o in per] for per in outs_a] == \
            [[batch_outcome(o) for o in per] for per in outs_b]
        for board_a, board_b in zip(a.boards, b.boards):
            assert snap(board_a.cpu) == snap(board_b.cpu)

    def test_seed_symbol_is_deterministic_and_lane_distinct(self):
        firmware = generate_firmware(traffic_light_system())
        a = BoardCohort(firmware, 6)
        b = BoardCohort(firmware, 6)
        va = a.seed_symbol("pedestrian.script.$idx", master_seed=7, span=7)
        vb = b.seed_symbol("pedestrian.script.$idx", master_seed=7, span=7)
        assert va == vb
        assert all(0 <= v < 7 for v in va)
        assert a.seed_symbol("pedestrian.script.$idx", master_seed=8,
                             span=7) != va

    def test_poke_symbol_length_mismatch_rejected(self):
        firmware = generate_firmware(traffic_light_system())
        cohort = BoardCohort(firmware, 4)
        with pytest.raises(FleetError, match="lanes"):
            cohort.poke_symbol("pedestrian.script.$idx", [1, 2])

    def test_zero_lanes_rejected(self):
        firmware = generate_firmware(traffic_light_system())
        with pytest.raises(FleetError, match="lane"):
            BoardCohort(firmware, 0)
