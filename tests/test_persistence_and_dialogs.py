"""Tests for GDM/trace persistence, the command-setup dialog, line noise."""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.comdes.reflect import system_to_model
from repro.comm.protocol import Command, CommandKind
from repro.comm.rs232 import Rs232Link
from repro.engine.session import DebugSession
from repro.engine.trace import ExecutionTrace
from repro.errors import CommError, DebuggerError
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.command_setup import CommandSetupDialog
from repro.gdm.mapping import default_comdes_table
from repro.gdm.store import (
    gdm_from_json, gdm_to_json, load_gdm, save_gdm,
)
from repro.util.timeunits import ms


def build_gdm():
    model = system_to_model(traffic_light_system())
    return AbstractionEngine(default_comdes_table(model.metamodel)).build(model)


class TestGdmPersistence:
    def test_json_roundtrip_preserves_structure(self):
        gdm = build_gdm()
        restored = gdm_from_json(gdm_to_json(gdm))
        assert len(restored.elements) == len(gdm.elements)
        assert len(restored.links) == len(gdm.links)
        assert len(restored.bindings) == len(gdm.bindings)

    def test_roundtrip_preserves_paths_and_geometry(self):
        gdm = build_gdm()
        restored = gdm_from_json(gdm_to_json(gdm))
        for element in gdm.elements.values():
            twin = restored.element_by_path(element.source_path)
            assert twin is not None
            assert twin.rect == element.rect
            assert twin.pattern.kind is element.pattern.kind

    def test_restored_gdm_animates(self):
        restored = gdm_from_json(gdm_to_json(build_gdm()))
        command = Command(CommandKind.STATE_ENTER,
                          "state:lights.lamp.GREEN", 1)
        matched = restored.bindings_for(command)
        assert matched
        from repro.gdm.reactions import apply_reaction
        apply_reaction(restored, matched[0], command)
        assert restored.element_by_path("state:lights.lamp.GREEN").highlighted

    def test_file_roundtrip(self, tmp_path):
        gdm = build_gdm()
        path = str(tmp_path / "model.gdm.json")
        save_gdm(gdm, path)
        restored = load_gdm(path)
        assert gdm_to_json(restored) == gdm_to_json(gdm)


class TestTracePersistence:
    def test_trace_file_roundtrip(self, tmp_path):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        session.setup().run(ms(100) * 15)
        path = str(tmp_path / "run.trace.json")
        session.trace.save(path)
        restored = ExecutionTrace.load(path)
        assert restored.to_dicts() == session.trace.to_dicts()


class TestCommandSetupDialog:
    def test_lists_sources_and_reactions(self):
        dialog = CommandSetupDialog(build_gdm())
        sources = dict(dialog.command_sources())
        assert sources["state:lights.lamp.RED"] == "STATE_ENTER"
        assert sources["signal:light"] == "SIG_UPDATE"
        assert "HIGHLIGHT" in dialog.reaction_options()

    def test_add_and_delete_bindings(self):
        gdm = build_gdm()
        dialog = CommandSetupDialog(gdm)
        before = len(dialog.bindings())
        dialog.add(CommandKind.SIG_UPDATE, "signal:btn", "PULSE")
        assert len(dialog.bindings()) == before + 1
        dialog.delete(before)
        assert len(dialog.bindings()) == before

    def test_unknown_reaction_rejected(self):
        dialog = CommandSetupDialog(build_gdm())
        with pytest.raises(DebuggerError):
            dialog.add(CommandKind.USER, "signal:btn", "EXPLODE")

    def test_delete_bounds_checked(self):
        dialog = CommandSetupDialog(build_gdm())
        with pytest.raises(DebuggerError):
            dialog.delete(999)

    def test_finish_requires_bindings_and_is_single_shot(self):
        gdm = build_gdm()
        dialog = CommandSetupDialog(gdm)
        dialog.finish()
        with pytest.raises(DebuggerError):
            dialog.add(CommandKind.USER, "signal:btn", "PULSE")

    def test_render_shows_all_three_panes(self):
        dialog = CommandSetupDialog(build_gdm())
        art = dialog.render_dialog()
        assert "Command sources" in art
        assert "Existing bindings" in art
        assert "Reaction types" in art


class TestLineNoise:
    def test_corrupt_flips_bits_at_configured_rate(self):
        link = Rs232Link(byte_error_rate=0.5, seed=42)
        data = bytes(100)
        out = link.corrupt(data)
        assert out != data
        assert 20 <= link.bytes_corrupted <= 80  # ~50 expected

    def test_zero_rate_is_identity(self):
        link = Rs232Link()
        data = b"\x01\x02\x03"
        assert link.corrupt(data) == data

    def test_invalid_rate_rejected(self):
        with pytest.raises(CommError):
            Rs232Link(byte_error_rate=1.5)

    def test_noisy_session_drops_frames_but_survives(self):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        # Replace the node's link with a noisy one before any traffic.
        session.setup()
        channel = session.channel.children[0]
        channel.link = Rs232Link(byte_error_rate=0.05, seed=7)
        session.run(ms(100) * 40)
        assert channel.decoder.checksum_errors > 0
        # Lossy but alive: fewer commands than frames, engine still WAITING.
        assert channel.commands_delivered < channel.frames_sent
        assert session.engine.state.name == "WAITING"
        assert len(session.trace) > 0

    def test_clean_session_loses_nothing(self):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        session.setup().run(ms(100) * 40)
        channel = session.channel.children[0]
        assert channel.decoder.checksum_errors == 0
        assert channel.commands_delivered == channel.frames_sent
