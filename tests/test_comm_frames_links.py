"""Tests for frame codec, RS-232 link and USB transport models."""

import pytest

from repro.comm.frames import (
    FRAME_LEN, FrameDecoder, FrameError, decode_frame, encode_frame,
)
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.errors import CommError


class TestFrameCodec:
    def test_roundtrip(self):
        frame = encode_frame(2, 17, -123456)
        assert decode_frame(frame) == (2, 17, -123456)

    def test_frame_is_fixed_length(self):
        assert len(encode_frame(1, 1, 1)) == FRAME_LEN

    def test_field_ranges_checked(self):
        with pytest.raises(FrameError):
            encode_frame(300, 0, 0)
        with pytest.raises(FrameError):
            encode_frame(1, 0x1_0000, 0)

    def test_negative_value_roundtrip(self):
        assert decode_frame(encode_frame(1, 5, -1))[2] == -1

    def test_decoder_skips_leading_garbage(self):
        decoder = FrameDecoder()
        out = decoder.feed(b"\x00\x01\x02" + encode_frame(3, 4, 5))
        assert out == [(3, 4, 5)]
        assert decoder.framing_errors == 3

    def test_corrupted_checksum_detected_and_resynced(self):
        good = encode_frame(3, 4, 5)
        bad = bytearray(good)
        bad[-1] ^= 0xFF
        decoder = FrameDecoder()
        out = decoder.feed(bytes(bad) + good)
        assert out == [(3, 4, 5)]
        assert decoder.checksum_errors >= 1

    def test_decode_frame_rejects_corruption(self):
        bad = bytearray(encode_frame(1, 2, 3))
        bad[5] ^= 0x01
        with pytest.raises(FrameError):
            decode_frame(bytes(bad))

    def test_partial_feed_buffers(self):
        frame = encode_frame(9, 9, 9)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:4]) == []
        assert decoder.feed(frame[4:]) == [(9, 9, 9)]


class TestRs232Link:
    def test_byte_time_at_115200(self):
        link = Rs232Link(115200)
        assert round(link.byte_time_us()) == 87  # 10 bits / 115200 baud

    def test_transmission_duration_scales_with_bytes(self):
        link = Rs232Link(9600)  # ~1042us per byte
        start, done = link.transmit(0, 10)
        assert start == 0
        assert done == round(10 * link.byte_time_us())

    def test_line_serializes_back_to_back_frames(self):
        link = Rs232Link(115200)
        _, done1 = link.transmit(0, 10)
        start2, done2 = link.transmit(0, 10)
        assert start2 == done1            # queued behind the first frame
        assert done2 > done1

    def test_idle_line_starts_immediately(self):
        link = Rs232Link(115200)
        link.transmit(0, 10)
        start, _ = link.transmit(100_000, 10)
        assert start == 100_000

    def test_invalid_params_rejected(self):
        with pytest.raises(CommError):
            Rs232Link(0)
        with pytest.raises(CommError):
            Rs232Link(9600).transmit(0, 0)


class TestUsbTransport:
    def test_cost_model(self):
        usb = UsbTransport(latency_us=125, per_word_us=2)
        assert usb.transaction_cost_us(4) == 125 + 8
        assert usb.transactions == 1
        assert usb.words_moved == 4

    def test_negative_params_rejected(self):
        with pytest.raises(CommError):
            UsbTransport(latency_us=-1)
        with pytest.raises(CommError):
            UsbTransport().transaction_cost_us(-1)
