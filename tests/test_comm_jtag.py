"""Tests for the IEEE 1149.1 TAP controller and the host probe."""

import pytest

from repro.comm.jtag import Instruction, JtagProbe, TapController, TapState
from repro.comm.usb import UsbTransport
from repro.errors import JtagError
from repro.target.board import BOARD_IDCODE, Board, DebugPort
from repro.target.memory import RAM_BASE


def make_probe(board=None, transport=None):
    board = board if board is not None else Board()
    tap = TapController(DebugPort(board))
    return board, JtagProbe(tap, transport=transport)


class TestTapController:
    def test_powers_up_in_test_logic_reset(self):
        tap = TapController(DebugPort(Board()))
        assert tap.state is TapState.TEST_LOGIC_RESET

    def test_canonical_walk_to_shift_dr(self):
        tap = TapController(DebugPort(Board()))
        for tms in (0, 1, 0, 0):  # RTI, Select-DR, Capture-DR, Shift-DR
            tap.drive(tms)
        assert tap.state is TapState.SHIFT_DR

    def test_reset_restores_idcode_instruction(self):
        tap = TapController(DebugPort(Board()))
        tap.ir = int(Instruction.MEMREAD)
        for _ in range(5):
            tap.drive(1)
        assert tap.ir == int(Instruction.IDCODE)

    def test_invalid_bit_values_rejected(self):
        tap = TapController(DebugPort(Board()))
        with pytest.raises(JtagError):
            tap.drive(2)

    def test_tck_counted(self):
        tap = TapController(DebugPort(Board()))
        for _ in range(7):
            tap.drive(0)
        assert tap.tck_count == 7


class TestProbeOperations:
    def test_read_idcode(self):
        _, probe = make_probe()
        idcode, cost = probe.read_idcode_timed()
        assert idcode == BOARD_IDCODE
        assert cost > 0

    def test_read_word_matches_memory(self):
        board, probe = make_probe()
        board.memory.poke(RAM_BASE + 5, 0xDEAD)
        assert probe.read_word(RAM_BASE + 5) == 0xDEAD

    def test_read_word_sign_extends(self):
        board, probe = make_probe()
        board.memory.poke(RAM_BASE, -7)
        assert probe.read_word(RAM_BASE) == -7

    def test_write_word_roundtrip(self):
        board, probe = make_probe()
        probe.write_word_timed(RAM_BASE + 2, 4242)
        assert board.memory.peek(RAM_BASE + 2) == 4242

    def test_reads_cost_zero_target_cycles(self):
        board, probe = make_probe()
        before = board.cpu.cycles
        probe.read_word(RAM_BASE)
        assert board.cpu.cycles == before
        assert board.memory.reads == 0  # backdoor, not a CPU access

    def test_scan_cost_scales_with_tck(self):
        _, slow = make_probe()
        slow.tck_hz = 1_000_000
        _, v_slow_cost = slow.read_word_timed(RAM_BASE)
        _, fast = make_probe()
        fast.tck_hz = 10_000_000
        _, v_fast_cost = fast.read_word_timed(RAM_BASE)
        assert v_slow_cost > v_fast_cost

    def test_transport_charged_when_present(self):
        _, bare = make_probe()
        _, bare_cost = bare.read_word_timed(RAM_BASE)
        _, cabled = make_probe(transport=UsbTransport(latency_us=500))
        _, cabled_cost = cabled.read_word_timed(RAM_BASE)
        assert cabled_cost >= bare_cost + 500

    def test_halt_resume_through_tap(self):
        board, probe = make_probe()
        probe.halt_target()
        assert board.stalled
        probe.resume_target()
        assert not board.stalled

    def test_invalid_tck_rejected(self):
        tap = TapController(DebugPort(Board()))
        with pytest.raises(JtagError):
            JtagProbe(tap, tck_hz=0)


class TestBlockRead:
    def test_block_read_equals_per_word_reads(self):
        board, probe = make_probe()
        expected = []
        for offset in range(10):
            board.memory.poke(RAM_BASE + offset, (offset - 5) * 1234)
            expected.append((offset - 5) * 1234)
        values, _ = probe.read_block_timed(RAM_BASE, 10)
        assert values == expected

    def test_capture_auto_increments_address(self):
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.MEMADDR)
        probe.shift_dr(RAM_BASE, 32)
        probe.shift_ir(Instruction.BLOCKREAD)
        probe.shift_dr(0, 32)
        probe.shift_dr(0, 32)
        assert tap._address == RAM_BASE + 2

    def test_memread_does_not_auto_increment(self):
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.MEMADDR)
        probe.shift_dr(RAM_BASE, 32)
        probe.shift_ir(Instruction.MEMREAD)
        probe.shift_dr(0, 32)
        probe.shift_dr(0, 32)
        assert tap._address == RAM_BASE

    def test_out_of_range_words_capture_fault_pattern(self):
        board, probe = make_probe()
        last = RAM_BASE + len(board.memory) - 1
        board.memory.poke(last, 7)
        values, _ = probe.read_block_timed(last, 2)
        assert values[0] == 7
        assert values[1] & 0xFFFFFFFF == 0xDEADDEAD

    def test_block_read_fewer_tck_cycles_than_word_reads(self):
        _, block_probe = make_probe()
        block_probe.read_block_timed(RAM_BASE, 16)
        block_clocks = block_probe.tap.tck_count
        _, word_probe = make_probe()
        for offset in range(16):
            word_probe.read_word_timed(RAM_BASE + offset)
        assert block_clocks < word_probe.tap.tck_count / 2

    def test_invalid_count_rejected(self):
        _, probe = make_probe()
        with pytest.raises(JtagError):
            probe.read_block_timed(RAM_BASE, 0)

    def test_scatter_rejects_empty(self):
        _, probe = make_probe()
        with pytest.raises(JtagError):
            probe.read_scatter_timed([])

    def test_five_tms_clocks_reset_with_blockread_selected(self):
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.BLOCKREAD)
        assert tap.ir == int(Instruction.BLOCKREAD)
        for _ in range(5):
            tap.drive(1)
        assert tap.state is TapState.TEST_LOGIC_RESET
        assert tap.ir == int(Instruction.IDCODE)


class TestBlockWrite:
    def test_block_write_equals_per_word_writes(self):
        board, probe = make_probe()
        values = [(offset - 5) * 4321 for offset in range(10)]
        probe.write_block_timed(RAM_BASE, values)
        blocked = [board.memory.peek(RAM_BASE + offset) for offset in range(10)]
        reference, ref_probe = make_probe()
        for offset, value in enumerate(values):
            ref_probe.write_word_timed(RAM_BASE + offset, value)
        worded = [reference.memory.peek(RAM_BASE + offset)
                  for offset in range(10)]
        assert blocked == worded == values

    def test_update_auto_increments_address(self):
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.MEMADDR)
        probe.shift_dr(RAM_BASE, 32)
        probe.shift_ir(Instruction.BLOCKWRITE)
        probe.shift_dr(11, 32)
        probe.shift_dr(22, 32)
        assert tap._address == RAM_BASE + 2
        assert board.memory.peek(RAM_BASE) == 11
        assert board.memory.peek(RAM_BASE + 1) == 22

    def test_memwrite_does_not_auto_increment(self):
        board = Board()
        tap = TapController(DebugPort(board))
        probe = JtagProbe(tap)
        probe.shift_ir(Instruction.MEMADDR)
        probe.shift_dr(RAM_BASE, 32)
        probe.shift_ir(Instruction.MEMWRITE)
        probe.shift_dr(11, 32)
        probe.shift_dr(22, 32)
        assert tap._address == RAM_BASE
        assert board.memory.peek(RAM_BASE) == 22

    def test_out_of_range_words_dropped(self):
        board, probe = make_probe()
        last = RAM_BASE + len(board.memory) - 1
        probe.write_block_timed(last, [7, 8])  # second word falls off RAM
        assert board.memory.peek(last) == 7

    def test_negative_values_roundtrip_signed(self):
        board, probe = make_probe()
        probe.write_block_timed(RAM_BASE, [-1, -1234])
        assert board.memory.peek(RAM_BASE) == -1
        assert board.memory.peek(RAM_BASE + 1) == -1234

    def test_one_usb_transaction_per_block(self):
        transport = UsbTransport()
        _, probe = make_probe(transport=transport)
        probe.write_block_timed(RAM_BASE, list(range(32)))
        assert transport.transactions == 1

    def test_block_write_fewer_tck_cycles_than_word_writes(self):
        _, block_probe = make_probe()
        block_probe.write_block_timed(RAM_BASE, list(range(16)))
        block_clocks = block_probe.tap.tck_count
        _, word_probe = make_probe()
        for offset in range(16):
            word_probe.write_word_timed(RAM_BASE + offset, offset)
        assert block_clocks < word_probe.tap.tck_count / 2

    def test_empty_block_rejected(self):
        _, probe = make_probe()
        with pytest.raises(JtagError):
            probe.write_block_timed(RAM_BASE, [])
