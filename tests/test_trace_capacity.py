"""Tests for ExecutionTrace bounded (ring-buffer) mode."""

import pytest

from repro.comm.protocol import Command, CommandKind
from repro.engine.trace import ExecutionTrace


def cmd(i: int) -> Command:
    return Command(CommandKind.SIG_UPDATE, f"signal:s{i}", i,
                   t_target=i * 10, t_host=i * 10 + 1)


def fill(trace: ExecutionTrace, n: int) -> None:
    for i in range(n):
        trace.record(cmd(i), [], "RUNNING")


class TestUnboundedDefault:
    def test_default_keeps_everything(self):
        trace = ExecutionTrace()
        fill(trace, 500)
        assert len(trace) == 500
        assert trace.dropped == 0
        assert [e.seq for e in trace][:3] == [0, 1, 2]

    def test_serialization_roundtrip_preserves_seq(self):
        trace = ExecutionTrace()
        fill(trace, 5)
        restored = ExecutionTrace.from_dicts(trace.to_dicts())
        assert [e.seq for e in restored] == [0, 1, 2, 3, 4]
        restored.record(cmd(99), [], "RUNNING")
        assert restored[len(restored) - 1].seq == 5


class TestBoundedRing:
    def test_capacity_keeps_newest_and_counts_dropped(self):
        trace = ExecutionTrace(capacity=10)
        fill(trace, 35)
        assert len(trace) == 10
        assert trace.dropped == 25
        assert [e.seq for e in trace] == list(range(25, 35))

    def test_memory_stays_flat(self):
        trace = ExecutionTrace(capacity=8)
        fill(trace, 8)
        events_at_capacity = list(trace)
        fill(trace, 10_000)
        assert len(trace) == 8
        assert trace[0].seq == 10_000  # oldest surviving event

        # behavior identical before capacity is reached
        assert len(events_at_capacity) == 8

    def test_queries_work_on_the_window(self):
        trace = ExecutionTrace(capacity=4)
        fill(trace, 12)
        assert trace.duration_us() == trace[3].command.t_host - trace[0].command.t_host
        assert set(trace.counts_by_path()) == {f"signal:s{i}"
                                               for i in range(8, 12)}
        assert trace.mean_latency_us() == 1

    def test_under_capacity_behaves_like_unbounded(self):
        bounded = ExecutionTrace(capacity=100)
        unbounded = ExecutionTrace()
        fill(bounded, 20)
        fill(unbounded, 20)
        assert bounded.to_dicts() == unbounded.to_dicts()
        assert bounded.dropped == 0

    def test_wrapped_indexing_matches_iteration_order(self):
        trace = ExecutionTrace(capacity=7)
        fill(trace, 23)  # head lands mid-ring
        assert [trace[i].seq for i in range(len(trace))] == \
               [e.seq for e in trace]
        assert trace[-1].seq == 22
        with pytest.raises(IndexError):
            trace[7]
        with pytest.raises(IndexError):
            trace[-8]

    def test_serialization_of_wrapped_ring_is_oldest_first(self):
        trace = ExecutionTrace(capacity=4)
        fill(trace, 9)
        assert [d["seq"] for d in trace.to_dicts()] == [5, 6, 7, 8]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTrace(capacity=0)
        with pytest.raises(ValueError):
            ExecutionTrace(capacity=-3)
