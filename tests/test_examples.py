"""Every example script must run cleanly (they are living documentation)."""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "cruise_control.py",
    "jtag_passive_monitor.py",
    "replay_timing_diagram.py",
    "fault_hunt.py",
    "production_cell.py",
]

#: a phrase each example's output must contain (proof it did its job)
EXPECTED_PHRASES = {
    "quickstart.py": "Timing diagram",
    "cruise_control.py": "Breakpoint: engine is PAUSED",
    "jtag_passive_monitor.py": "Extra target cost                   : 0 cycles",
    "replay_timing_diagram.py": "After seek(5)",
    "fault_hunt.py": "BUG FOUND",
    "production_cell.py": "classifier: IMPLEMENTATION",
}


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_and_produces_expected_output(script, tmp_path,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples may write artifact files
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(path, run_name="__main__")
    output = buffer.getvalue()
    assert len(output) > 200, f"{script} produced almost no output"
    assert EXPECTED_PHRASES[script] in output


def test_examples_list_is_complete():
    on_disk = sorted(f for f in os.listdir(EXAMPLES_DIR)
                     if f.endswith(".py"))
    assert on_disk == sorted(EXAMPLES)
