"""Tests for the production-cell workload and its safety interlock."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.comdes.examples import (
    conveyor_machine, press_machine, production_cell_system,
)
from repro.comdes.validate import validate_system
from repro.comm.protocol import Command, CommandKind
from repro.engine.checks import CrossInvariantMonitor
from repro.engine.session import DebugSession
from repro.experiments.requirements import (
    production_cell_code_watches, production_cell_monitor_suite,
)
from repro.faults.design import inject_design_fault
from repro.util.timeunits import ms, sec


class TestModelDynamics:
    def test_system_validates(self):
        validate_system(production_cell_system())

    def test_handshake_cycle(self):
        history = production_cell_system().lockstep_run(40)
        belts = [r["belt"] for r in history]
        dones = [r["press_done"] for r in history]
        assert 1 in belts and 0 in belts      # belt starts and stops
        assert 1 in dones                     # press completes

    def test_interlock_holds_in_reference_semantics(self):
        # Belt and press ram are never active simultaneously.
        system = production_cell_system()
        history = system.lockstep_run(60)
        press_block = system.actor("press").network.block("ram_ctl")
        # Track press state through the interpreter directly.
        machine = press_block.machine
        state = machine.initial
        env = machine.initial_env()
        for row in history:
            state, env = machine.step(state, env,
                                      {"at_press": row["at_press"]})
            if state == "PRESSING":
                assert row["belt"] == 0

    def test_conveyor_machine_travel_time(self):
        machine = conveyor_machine(travel_steps=2)
        trace = machine.run([
            {"item_present": 1, "press_done": 0},
            {"item_present": 0, "press_done": 0},
            {"item_present": 0, "press_done": 0},
            {"item_present": 0, "press_done": 0},
        ])
        states = [s for s, _ in trace]
        assert states == ["MOVING", "MOVING", "MOVING", "DELIVER"]

    def test_press_machine_handshake_reset(self):
        machine = press_machine(press_steps=1)
        inputs = ([{"at_press": 1}] * 4) + [{"at_press": 0}] * 2
        trace = machine.run(inputs)
        dones = [env["press_done"] for _, env in trace]
        # PRESSING x2, OPENING, then done=1 in OPEN; reset once item leaves.
        assert dones == [0, 0, 0, 1, 0, 0]
        assert [s for s, _ in trace][-3:] == ["OPEN", "OPEN", "OPEN"]

    def test_firmware_matches_interpreter(self):
        system = production_cell_system()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        assert (run_firmware_lockstep(system, firmware, 60)
                == system.lockstep_run(60))


class TestInterlockMonitoring:
    def test_nominal_run_is_quiet(self):
        session = DebugSession(production_cell_system(),
                               channel_kind="active")
        session.setup()
        suite = production_cell_monitor_suite()
        suite.attach(session.engine)
        session.run(sec(6))
        assert not suite.any_violation, [str(r) for r in suite.reports()]
        # The press actually cycled (monitors had something to watch).
        presses = session.trace.events(path_prefix="state:press.ram_ctl")
        assert len(presses) >= 6

    def test_interlock_fires_on_forced_belt_during_press(self):
        monitor = CrossInvariantMonitor(
            "S1", "state:press.ram_ctl.PRESSING", "state:press.ram_ctl.",
            "signal:belt", lambda belt: belt == 0,
        )
        # Simulate a command stream where the belt is on during PRESSING.
        monitor.inspect(Command(CommandKind.SIG_UPDATE, "signal:belt", 1,
                                t_target=10, t_host=10))
        report = monitor.inspect(Command(
            CommandKind.STATE_ENTER, "state:press.ram_ctl.PRESSING", 1,
            t_target=20, t_host=20))
        assert report is not None and "invariant broken" in report.message

    def test_interlock_fires_on_belt_restart_mid_press(self):
        monitor = CrossInvariantMonitor(
            "S1", "state:press.ram_ctl.PRESSING", "state:press.ram_ctl.",
            "signal:belt", lambda belt: belt == 0,
        )
        monitor.inspect(Command(CommandKind.STATE_ENTER,
                                "state:press.ram_ctl.PRESSING", 1,
                                t_target=10, t_host=10))
        report = monitor.inspect(Command(CommandKind.SIG_UPDATE,
                                         "signal:belt", 1,
                                         t_target=20, t_host=20))
        assert report is not None

    def test_interlock_quiet_when_state_left(self):
        monitor = CrossInvariantMonitor(
            "S1", "state:press.ram_ctl.PRESSING", "state:press.ram_ctl.",
            "signal:belt", lambda belt: belt == 0,
        )
        monitor.inspect(Command(CommandKind.STATE_ENTER,
                                "state:press.ram_ctl.PRESSING", 1,
                                t_target=10, t_host=10))
        monitor.inspect(Command(CommandKind.STATE_ENTER,
                                "state:press.ram_ctl.OPENING", 2,
                                t_target=20, t_host=20))
        report = monitor.inspect(Command(CommandKind.SIG_UPDATE,
                                         "signal:belt", 1,
                                         t_target=30, t_host=30))
        assert report is None


class TestFaultedCell:
    def test_design_fault_detected_by_suite(self):
        # Retargeting a conveyor transition breaks the legal order or the
        # handshake; the suite must notice within the scenario.
        detected = 0
        for seed in (1, 2, 3):
            mutant, fault = inject_design_fault(production_cell_system(),
                                                "wrong_target", seed)
            if mutant is None:
                continue
            session = DebugSession(mutant, channel_kind="active")
            session.setup()
            suite = production_cell_monitor_suite()
            suite.attach(session.engine)
            session.run(sec(6))
            if suite.any_violation:
                detected += 1
        assert detected >= 2

    def test_code_watches_blind_to_sequencing(self):
        # The same faults keep every watched value in range.
        from repro.faults.campaign import _run_code_debugger
        mutant, _ = inject_design_fault(production_cell_system(),
                                        "wrong_target", 1)
        firmware = generate_firmware(mutant, InstrumentationPlan.none())
        detected, _, _ = _run_code_debugger(
            mutant, firmware, production_cell_code_watches(), sec(6))
        assert not detected
