"""Spill-store replay fidelity: spilled history replays bit-identically
to in-memory, checkpointed seek equals linear replay at every boundary,
and the 50k-event acceptance scenario runs at flat memory."""

import pytest

from repro.comm.protocol import Command, CommandKind
from repro.engine.replay import ReplayPlayer
from repro.engine.session import DebugSession
from repro.engine.timing_diagram import TimingDiagram
from repro.engine.trace import ExecutionTrace
from repro.gdm.model import GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.reactions import ReactionKind, ReactionRecord
from repro.experiments.workloads import chain_system
from repro.tracedb import StoredTrace, TraceStore, build_checkpoints
from repro.util.timeunits import ms


def frames_key(frames):
    return [(f.t_us, f.trigger, f.styles) for f in frames.frames()]


def synth_gdm() -> GdmModel:
    """A small model with an exclusive-highlight group and a value box."""
    gdm = GdmModel("synthetic")
    box = PatternSpec(PatternKind.RECTANGLE)
    for i in range(4):
        gdm.add_element(f"S{i}", box, f"state:a.m.S{i}", group="a.m")
    gdm.add_element("x", box, "signal:x")
    return gdm


def synth_events(n: int):
    """(command, reactions) pairs cycling states and annotating a value."""
    gdm = synth_gdm()
    state_ids = [gdm.element_by_path(f"state:a.m.S{i}").id for i in range(4)]
    x_id = gdm.element_by_path("signal:x").id
    out = []
    for i in range(n):
        t = i * 7
        if i % 3 == 0:
            path = f"state:a.m.S{(i // 3) % 4}"
            command = Command(CommandKind.STATE_ENTER, path, 1,
                              t_target=t, t_host=t + 2)
            reactions = [ReactionRecord(ReactionKind.HIGHLIGHT,
                                        state_ids[(i // 3) % 4], path,
                                        "highlight", t + 2)]
        else:
            command = Command(CommandKind.SIG_UPDATE, "signal:x", i,
                              t_target=t, t_host=t + 2)
            reactions = [ReactionRecord(ReactionKind.ANNOTATE, x_id,
                                        "signal:x", f"value={i}", t + 2)]
        out.append((command, reactions))
    return out


def record_pair(tmp_path, n, capacity=256, segment_events=1024,
                checkpoint_every=None, codec="binary"):
    """The same event stream into (spilling ring, unbounded reference)."""
    store = TraceStore(str(tmp_path / "spill"), segment_events=segment_events,
                       codec=codec, checkpoint_every=checkpoint_every)
    ring = ExecutionTrace(capacity=capacity, spill=store)
    ref = ExecutionTrace()
    for command, reactions in synth_events(n):
        ring.record(command, reactions, "REACTING")
        ref.record(command, reactions, "REACTING")
    return ring, ref, store


class TestSpilledReplayFidelity:
    def test_session_spill_equals_in_memory(self, tmp_path):
        """A real (active-channel) session records the same bytes either way."""
        reference = DebugSession(chain_system(8, period_us=ms(2)),
                                 channel_kind="active")
        reference.setup().run(ms(2) * 60)

        store = TraceStore(str(tmp_path / "s"), segment_events=64)
        spilling = DebugSession(chain_system(8, period_us=ms(2)),
                                channel_kind="active",
                                trace_capacity=32, trace_spill=store)
        spilling.setup().run(ms(2) * 60)

        assert spilling.trace.dropped == 0
        assert len(spilling.trace) == 32
        full = spilling.trace.full_history()
        assert [e.to_dict() for e in full] == reference.trace.to_dicts()

        p_ref = ReplayPlayer(reference.trace, reference.gdm)
        p_ref.start()
        p_ref.run_to_end()
        p_store = ReplayPlayer(full, spilling.gdm)
        p_store.start()
        p_store.run_to_end()
        assert frames_key(p_store.frames) == frames_key(p_ref.frames)
        assert p_store.highlighted_paths() == p_ref.highlighted_paths()

        assert (TimingDiagram.from_store(store).render_ascii()
                == TimingDiagram(reference.trace).render_ascii())
        assert (TimingDiagram.from_store(store).render_svg()
                == TimingDiagram(reference.trace).render_svg())

    def test_session_spill_defaults_to_bounded_cache(self, tmp_path):
        # spilling without an explicit capacity must not keep an
        # unbounded in-memory duplicate of the on-disk history
        from repro.tracedb import DEFAULT_SPILL_CACHE_EVENTS
        store = TraceStore(str(tmp_path / "s"))
        session = DebugSession(chain_system(4, period_us=ms(2)),
                               channel_kind="active", trace_spill=store)
        session.setup()
        assert session.engine.trace.capacity == DEFAULT_SPILL_CACHE_EVENTS
        assert session.engine.trace.spill is store

    def test_acceptance_50k_events_flat_memory_bit_identical(self, tmp_path):
        """The ISSUE acceptance scenario: capacity=256 ring + spill over
        50k events — dropped == 0, cache bounded at 256, full replay
        byte-identical to the unbounded in-memory trace."""
        n = 50_000
        ring, ref, store = record_pair(tmp_path, n, capacity=256,
                                       segment_events=4096)
        assert ring.dropped == 0
        assert len(ring) == 256  # in-memory footprint independent of n
        assert store.event_count == n

        gdm_a, gdm_b = synth_gdm(), synth_gdm()
        p_ref = ReplayPlayer(ref, gdm_a)
        p_ref.start()
        assert p_ref.run_to_end() == n
        p_store = ReplayPlayer(ring.full_history(), gdm_b)
        p_store.start()
        assert p_store.run_to_end() == n
        assert gdm_a.dynamic_state() == gdm_b.dynamic_state()
        # spot-check frame identity (full frame list comparison is O(n)
        # dict compares; ends + stride keep the test fast and honest)
        fa, fb = p_ref.frames, p_store.frames
        assert len(fa) == len(fb) == n
        for i in list(range(0, n, 997)) + [n - 1]:
            assert (fa[i].t_us, fa[i].styles) == (fb[i].t_us, fb[i].styles)


class TestCheckpointedSeek:
    def test_seek_equals_linear_at_every_boundary(self, tmp_path):
        n = 300
        ring, ref, store = record_pair(tmp_path, n, checkpoint_every=None,
                                       segment_events=64)
        gdm = synth_gdm()
        built = build_checkpoints(store, gdm, every=48)
        assert built == n // 48
        view = StoredTrace(store)
        for position in range(n + 1):
            player = ReplayPlayer(view, gdm)
            applied = player.seek(position)
            checkpointed = gdm.dynamic_state()
            linear = ReplayPlayer(ref, synth_gdm())
            linear_gdm = linear.gdm
            linear.seek(position, use_checkpoints=False)
            assert checkpointed == linear_gdm.dynamic_state(), position
            assert applied <= 48  # never replays more than one interval

    def test_live_checkpoints_equal_offline_ones(self, tmp_path):
        """The engine's live snapshots match a post-hoc replay build."""
        live_store = TraceStore(str(tmp_path / "live"), segment_events=64,
                                checkpoint_every=40)
        session = DebugSession(chain_system(6, period_us=ms(2)),
                               channel_kind="active",
                               trace_capacity=32, trace_spill=live_store)
        session.setup().run(ms(2) * 60)

        offline_store = TraceStore(str(tmp_path / "offline"),
                                   segment_events=64)
        for record in live_store.events():
            offline_store.append(record)
        build_checkpoints(offline_store, session.gdm, every=40)

        live = live_store.checkpoints()
        offline = offline_store.checkpoints()
        assert [c.seq for c in live] == [c.seq for c in offline]
        assert live, "session too short to checkpoint"
        for info_a, info_b in zip(live, offline):
            a = live_store.nearest_checkpoint(info_a.seq)
            b = offline_store.nearest_checkpoint(info_b.seq)
            assert a.payload == b.payload
            assert a.t_host == b.t_host

    def test_seek_time_matches_position_seek(self, tmp_path):
        n = 200
        ring, ref, store = record_pair(tmp_path, n, checkpoint_every=32)
        view = StoredTrace(store)
        gdm = synth_gdm()
        player = ReplayPlayer(view, gdm)
        for t in (-1, 0, 13, 500, 698, 699, 700, 10**9):
            player.seek_time(t)
            by_time = gdm.dynamic_state()
            expected_pos = sum(1 for c, _ in synth_events(n)
                               if c.t_host <= t)
            assert player.position == expected_pos, t
            player.seek(expected_pos, use_checkpoints=False)
            assert gdm.dynamic_state() == by_time, t

    def test_seek_bounds_checked(self, tmp_path):
        ring, ref, store = record_pair(tmp_path, 10)
        player = ReplayPlayer(StoredTrace(store), synth_gdm())
        from repro.errors import DebuggerError
        with pytest.raises(DebuggerError):
            player.seek(11)
        with pytest.raises(DebuggerError):
            player.seek(-1)
