"""The live telemetry plane: heartbeats, windows, watchdogs, recorder.

Covers the streaming contract of ``repro.obs.live`` + ``repro.obs.health``:

* the emitter's delta protocol (modeled-time window bucketing, monotone
  clamp across phase restarts, re-baseline at job start, empty-delta
  skip, residual flush at finish, liveness beacons);
* the aggregator (canonical window history, running merge, retried-job
  restart, queue drain, worker-stall detection, idempotent close);
* the rule engine (glob matching, thresholds, debounce, severity
  validation, canonical alert order, transcript rendering);
* the flight recorder (bounded ring, canonical serialization,
  post-mortem trajectory section, Perfetto counter-track export);
* and the acceptance criterion: the committed
  ``artifacts/obs_live_alerts.txt`` exemplar regenerates byte-for-byte
  from a fixed-seed campaign, with serial and fleet runs producing the
  identical transcript.
"""

import json
import queue as queue_mod

import pytest

from repro.comdes.examples import traffic_light_system
from repro.engine.session import DebugSession
from repro.experiments import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.experiments.harness import save_artifact
from repro.faults import run_campaign
from repro.fleet import FleetRunner, SerialRunner
from repro.fleet.jobs import JobResult
from repro.obs import OBS, disable, enable
from repro.obs import health
from repro.obs.export import chrome_trace, main as export_main, render_bytes
from repro.obs.live import (
    FlightRecorder,
    HeartbeatConfig,
    HeartbeatEmitter,
    LiveAggregator,
    Window,
    main as live_main,
    render_dashboard,
)
from repro.obs.metrics import MetricsSnapshot
from repro.obs.postmortem import campaign_postmortem, job_postmortem
from repro.util.timeunits import ms, sec


@pytest.fixture(autouse=True)
def _obs_off():
    disable()
    yield
    disable()


def snap_of(**counters) -> MetricsSnapshot:
    snap = MetricsSnapshot()
    for name, value in counters.items():
        snap.counters[name.replace("__", ".")] = {(): value}
    return snap


def window_of(job_index, index, period=100, job_id="j", **counters):
    return Window(job_index, job_id, index, index * period,
                  (index + 1) * period, snap_of(**counters))


CAMPAIGN_KW = dict(design_kinds=("wrong_target",),
                   impl_kinds=("inverted_branch",),
                   comm_kinds=("frame_loss", "frame_corrupt"),
                   seeds=(1,), duration_us=sec(1))


def live_campaign(runner_factory, **overrides):
    """One heartbeat campaign; returns (aggregator, campaign result)."""
    disable()
    agg = LiveAggregator(HeartbeatConfig(period_us=250_000))
    kw = dict(CAMPAIGN_KW)
    kw.update(overrides)
    result = run_campaign(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, runner=runner_factory(agg), **kw)
    return agg, result


class TestHeartbeatConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period_us=0)
        with pytest.raises(ValueError):
            HeartbeatConfig(every_jobs=0)


class TestHeartbeatEmitter:
    def setup_method(self):
        self.sink = []
        self.config = HeartbeatConfig(period_us=100, every_jobs=1)
        self.emitter = HeartbeatEmitter(self.config, self.sink.append,
                                        source="w")

    def kinds(self):
        return [msg[0] for msg in self.sink]

    def test_windows_bucket_by_modeled_time(self):
        reg, _ = enable(spans=False)
        self.emitter.job_start(0, "control")
        reg.counter("x").inc(3)
        self.emitter.tick(150)        # crossed window 0
        reg.counter("x").inc(2)
        self.emitter.job_finish(0, "control", "ok")
        windows = [m for m in self.sink if m[0] == "window"]
        finish = [m for m in self.sink if m[0] == "finish"][0]
        assert [(m[4], m[6].counter_total("x")) for m in windows] == [(0, 3)]
        assert finish[4] == 1 and finish[8].counter_total("x") == 2
        assert self.kinds() == ["start", "window", "finish", "beacon"]

    def test_monotone_clamp_across_phase_restart(self):
        # campaign experiments run two fresh simulators per job; the
        # second phase's t=0 must not rewind the emitter's clock
        reg, _ = enable(spans=False)
        self.emitter.job_start(0, "j")
        reg.counter("x").inc()
        self.emitter.tick(450)
        reg.counter("x").inc()
        self.emitter.tick(10)     # phase restart: clamps, never rewinds
        self.emitter.tick(460)
        self.emitter.job_finish(0, "j", "ok")
        finish = [m for m in self.sink if m[0] == "finish"][0]
        assert finish[4] == 4     # residual lands at 450//100, not 10//100
        windows = [m[4] for m in self.sink if m[0] == "window"]
        assert windows == [3]     # one flush when t crossed 400

    def test_empty_deltas_are_skipped(self):
        enable(spans=False)
        self.emitter.job_start(0, "j")
        self.emitter.tick(150)
        self.emitter.tick(350)    # nothing changed: no window messages
        self.emitter.job_finish(0, "j", "ok")
        assert [m[0] for m in self.sink if m[0] == "window"] == []
        assert [m for m in self.sink if m[0] == "finish"][0][8] is None

    def test_job_start_rebaselines(self):
        # changes between jobs belong to nobody and must not leak into
        # the next job's first window
        reg, _ = enable(spans=False)
        reg.counter("x").inc(99)
        self.emitter.job_start(0, "j")
        reg.counter("x").inc(1)
        self.emitter.job_finish(0, "j", "ok")
        finish = [m for m in self.sink if m[0] == "finish"][0]
        assert finish[8].counter_total("x") == 1

    def test_ambient_lane_opens_on_tick(self):
        reg, _ = enable(spans=False)
        reg.counter("x").inc()
        self.emitter.tick(150)
        assert self.sink[0][:4] == ("start", "w", -1, "ambient")
        self.emitter.close()
        assert self.kinds()[-2] == "finish"   # close flushes the lane

    def test_beacon_cadence(self):
        enable(spans=False)
        emitter = HeartbeatEmitter(HeartbeatConfig(period_us=100,
                                                   every_jobs=2),
                                   self.sink.append, source="w")
        for index in range(4):
            emitter.job_start(index, f"j{index}")
            emitter.job_finish(index, f"j{index}", "ok")
        beacons = [m for m in self.sink if m[0] == "beacon"]
        assert [m[2] for m in beacons] == [2, 4]


class TestLiveAggregator:
    def test_window_merge_and_current(self):
        agg = LiveAggregator(HeartbeatConfig(period_us=100))
        agg.feed(("start", "w", 0, "j"))
        agg.feed(("window", "w", 0, "j", 0, 90, snap_of(x=3)))
        agg.feed(("finish", "w", 0, "j", 0, 99, "ok", "", snap_of(x=2)))
        history = agg.history()
        assert len(history) == 1
        assert history[0].counter_total("x") == 5
        assert agg.current().counter_total("x") == 5
        assert agg.lanes()[0]["status"] == "ok"

    def test_retried_job_restarts_clean(self):
        # a worker died mid-job; the isolated retry re-runs from
        # scratch and its stream must not double-count the first try
        agg = LiveAggregator(HeartbeatConfig(period_us=100))
        agg.feed(("start", "w1", 0, "j"))
        agg.feed(("window", "w1", 0, "j", 0, 90, snap_of(x=3)))
        agg.feed(("start", "w2", 0, "j"))           # the retry
        agg.feed(("window", "w2", 0, "j", 0, 90, snap_of(x=3)))
        agg.feed(("finish", "w2", 0, "j", 1, 150, "ok", "", None))
        assert agg.current().counter_total("x") == 3
        assert [w.counter_total("x") for w in agg.history()] == [3]

    def test_drain_over_queue(self):
        agg = LiveAggregator(HeartbeatConfig(period_us=100))
        q = queue_mod.Queue()
        q.put(("start", "w", 0, "j"))
        q.put(("window", "w", 0, "j", 0, 90, snap_of(x=1)))
        assert agg.drain(q) == 2
        assert agg.drain(q) == 0
        assert agg.current().counter_total("x") == 1

    def test_stall_detection(self):
        agg = LiveAggregator(HeartbeatConfig(period_us=100),
                             stall_budget=3)
        agg.feed(("start", "w1", 1, "stuck"))
        for index in range(2, 6):
            agg.feed(("start", "w2", index, f"j{index}"))
            agg.feed(("finish", "w2", index, f"j{index}", 0, 10, "ok",
                      "", None))
        alerts = agg.evaluate()
        stalls = [a for a in alerts if a.rule == "worker-stall"]
        assert len(stalls) == 1
        assert stalls[0].job_index == 1 and stalls[0].severity == "error"
        assert "budget 3" in stalls[0].detail
        # a late finish clears it
        agg.feed(("finish", "w1", 1, "stuck", 5, 510, "ok", "", None))
        assert not [a for a in agg.evaluate()
                    if a.rule == "worker-stall"]

    def test_close_is_idempotent_and_final(self):
        agg = LiveAggregator(HeartbeatConfig(period_us=100))
        agg.feed(("start", "w", 0, "j"))
        agg.feed(("finish", "w", 0, "j", 0, 10, "ok", "", None))
        first = agg.close()
        assert first == agg.close()
        assert agg.recorder.alerts == agg.evaluate()
        with pytest.raises(RuntimeError):
            agg.feed(("beacon", "w", 1))

    def test_unknown_message_kind_rejected(self):
        agg = LiveAggregator()
        with pytest.raises(ValueError):
            agg.feed(("gossip", "w"))


class TestHealthRules:
    def test_threshold_and_glob(self):
        rule = health.Rule("r", "retry.*", health.threshold(5))
        hits = rule.matches(window_of(0, 0, retry__outcome=5))
        assert hits == [("retry.outcome", 5)]
        assert not rule.matches(window_of(0, 0, retry__outcome=4))
        assert not rule.matches(window_of(0, 0, chaos__fault=99))

    def test_debounce_per_job(self):
        rule = health.Rule("r", "x", health.threshold(1), debounce=3)
        windows = [window_of(0, i, x=1) for i in range(6)]
        windows += [window_of(1, 0, x=1)]   # other job: own debounce
        alerts = health.evaluate(windows, rules=(rule,))
        assert [(a.job_index, a.window_index) for a in alerts] == [
            (0, 0), (0, 3), (1, 0)]

    def test_severity_and_debounce_validation(self):
        with pytest.raises(ValueError):
            health.Rule("r", "x", health.threshold(1), severity="fatal")
        with pytest.raises(ValueError):
            health.Rule("r", "x", health.threshold(1), debounce=0)

    def test_alert_order_is_canonical(self):
        windows = [window_of(1, 0, kernel__deadline_misses=2),
                   window_of(0, 1, chaos__fault=9)]
        alerts = health.evaluate(sorted(windows,
                                        key=lambda w: w.job_index))
        assert [a.job_index for a in alerts] == [0, 1]
        # feeding the same canonical window order always reproduces
        again = health.evaluate(sorted(windows,
                                       key=lambda w: w.job_index))
        assert [a.order() for a in alerts] == [a.order() for a in again]

    def test_alert_roundtrip_and_line(self):
        alert = health.Alert(2, "comm/frame_loss/1", 3, 300, 400,
                             "comm-fault-storm", "warn", "chaos.fault",
                             7, detail="d")
        assert health.Alert.from_dict(alert.to_dict()).order() == \
            alert.order()
        line = alert.line()
        assert "job #2" in line and "chaos.fault=7" in line

    def test_transcript_renders_empty_and_full(self):
        empty = health.render_transcript([], windows=3, jobs=2)
        assert "0 alert(s)" in empty and "no alerts" in empty
        alert = health.Alert(0, "j", 0, 0, 100, "r", "warn", "x", 1)
        full = health.render_transcript([alert], windows=1, jobs=1)
        assert alert.line() in full


class TestFlightRecorder:
    def test_ring_dedupes_and_evicts(self):
        recorder = FlightRecorder(capacity=2)
        recorder.push(window_of(0, 0, x=1))
        recorder.push(window_of(0, 0, x=5))   # same key: replace
        recorder.push(window_of(0, 1, x=2))
        recorder.push(window_of(1, 0, x=3))   # evicts (0, 0)
        assert [(w.job_index, w.index) for w in recorder.history()] == [
            (0, 1), (1, 0)]
        assert recorder.for_job(1)[0].counter_total("x") == 3

    def test_canonical_serialization_roundtrip(self):
        recorder = FlightRecorder(capacity=8, period_us=100)
        recorder.push(window_of(1, 0, x=2))
        recorder.push(window_of(0, 2, y=4))
        recorder.alerts = [health.Alert(0, "j", 2, 200, 300, "r",
                                        "warn", "y", 4)]
        clone = FlightRecorder.from_dict(
            json.loads(recorder.to_bytes().decode("ascii")))
        assert clone.to_bytes() == recorder.to_bytes()
        assert [a.order() for a in clone.alerts] == \
            [a.order() for a in recorder.alerts]

    def test_save_load(self, tmp_path):
        recorder = FlightRecorder(period_us=100)
        recorder.push(window_of(0, 0, x=1))
        path = str(tmp_path / "flight.json")
        recorder.save(path)
        assert FlightRecorder.load(path).to_bytes() == recorder.to_bytes()


class TestSessionAmbientLane:
    def test_session_streams_without_fleet_plumbing(self):
        reg, _ = enable(spans=False)
        agg = LiveAggregator(HeartbeatConfig(period_us=ms(5)))
        OBS.live = HeartbeatEmitter(agg.config, agg.feed, source="s")
        session = DebugSession(traffic_light_system(),
                               channel_kind="passive",
                               poll_period_us=500).setup()
        session.run(ms(20))
        OBS.live.close()
        lanes = agg.lanes()
        assert lanes and lanes[0]["job_index"] == -1
        assert lanes[0]["job_id"] == "ambient"
        assert agg.history()
        assert agg.current().counter_total("link.transactions") > 0


class TestCampaignLive:
    """The acceptance criterion: deterministic serial == fleet alerts."""

    def test_serial_fleet_transcripts_identical_and_exemplar(self):
        serial_agg, serial_result = live_campaign(
            lambda agg: SerialRunner(live=agg))
        serial_transcript = serial_agg.close()
        fleet_agg, fleet_result = live_campaign(
            lambda agg: FleetRunner(workers=2, live=agg))
        fleet_transcript = fleet_agg.close()

        assert serial_transcript == fleet_transcript
        serial_windows = [(w.job_index, w.index, w.delta.to_dict())
                          for w in serial_agg.history()]
        fleet_windows = [(w.job_index, w.index, w.delta.to_dict())
                         for w in fleet_agg.history()]
        assert serial_windows == fleet_windows
        assert serial_result.summary_rows() == fleet_result.summary_rows()

        # the campaign corpus includes chaos kinds, so the transcript
        # has a real beat — an all-quiet exemplar would prove nothing
        assert "comm-fault-storm" in serial_transcript
        save_artifact("obs_live_alerts.txt", serial_transcript)

    def test_dashboard_and_recorder_replay(self, tmp_path):
        agg, _ = live_campaign(lambda a: SerialRunner(live=a))
        agg.close()
        live_text = render_dashboard(agg)
        assert "LIVE TELEMETRY" in live_text
        assert "comm/frame_loss/1" in live_text
        assert "comm-fault-storm" in live_text

        path = str(tmp_path / "flight.json")
        agg.recorder.save(path)
        replay = FlightRecorder.load(path)
        assert render_dashboard(replay).count("comm-fault-storm") == \
            live_text.count("comm-fault-storm")
        assert live_main(["--recorder", path]) == 0

    def test_postmortem_trajectory_section(self):
        agg, _ = live_campaign(lambda a: SerialRunner(live=a))
        agg.close()
        failed = JobResult(
            3, "comm/frame_loss/1",
            error={"type": "TargetFault",
                   "message": "target fault at pc=42: stack underflow",
                   "traceback": ""})
        text = campaign_postmortem([failed], total_jobs=5,
                                   recorder=agg.recorder)
        assert "flight recorder (trajectory into death):" in text
        assert "link.transactions +" in text  # top-3 deltas per window
        # a job the recorder never saw reports that, not nothing
        other = job_postmortem(
            JobResult(7, "x", error={"type": "E", "message": "m",
                                     "traceback": ""}),
            recorder=agg.recorder)
        assert "holds no windows" in other

    def test_export_flight_recorder_counter_tracks(self, tmp_path):
        agg, _ = live_campaign(lambda a: SerialRunner(live=a))
        agg.close()
        path = str(tmp_path / "flight.json")
        agg.recorder.save(path)
        out = str(tmp_path / "trace.json")
        assert export_main(["--flight-recorder", path, "-o", out]) == 0
        doc = json.loads(open(out, "rb").read().decode("ascii"))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and all(e["pid"] >= 2000 for e in counters)
        assert any(e["name"] == "chaos.fault" for e in counters)
        # deterministic bytes: rendering twice is byte-identical
        again = render_bytes(chrome_trace(
            recorder=FlightRecorder.load(path)))
        assert open(out, "rb").read() == again

    def test_export_requires_a_source(self):
        with pytest.raises(SystemExit):
            export_main([])
