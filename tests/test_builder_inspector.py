"""Tests for the fluent system builder and the model-level inspector."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.blocks import GainFB, SequenceFB
from repro.comdes.builder import SystemBuilder
from repro.comdes.examples import (
    blinker_machine, cruise_control_system, traffic_light_machine,
    traffic_light_system,
)
from repro.engine.inspector import ModelInspector
from repro.errors import DebuggerError, ModelError, ValidationError
from repro.rtos.kernel import DtmKernel
from repro.util.timeunits import ms


def built_traffic_light():
    return (SystemBuilder("built_light")
            .signal("btn")
            .signal("light")
            .actor("pedestrian", period_us=ms(100))
                .block(SequenceFB("script", values=[0] * 6 + [1]))
                .writes("btn", from_="script.y")
            .done()
            .actor("lights", period_us=ms(100))
                .machine("lamp", traffic_light_machine())
                .reads("btn", into="lamp.btn")
                .writes("light", from_="lamp.light")
            .done()
            .build())


class TestSystemBuilder:
    def test_builder_system_matches_handwritten(self):
        built = built_traffic_light()
        handwritten = traffic_light_system()
        assert (built.lockstep_run(30)
                == handwritten.lockstep_run(30))

    def test_priorities_default_to_declaration_order(self):
        system = built_traffic_light()
        assert system.actor("pedestrian").task.priority == 1
        assert system.actor("lights").task.priority == 2

    def test_wire_and_fan_out(self):
        system = (SystemBuilder("fan")
                  .signal("u").signal("a").signal("b")
                  .actor("stim", period_us=1000)
                      .block(SequenceFB("s", values=[5]))
                      .writes("u", from_="s.y")
                  .done()
                  .actor("proc", period_us=1000)
                      .block(GainFB("g1", num=2))
                      .block(GainFB("g2", num=3))
                      .reads("u", into="g1.u")
                      .reads("u", into="g2.u")
                      .writes("a", from_="g1.y")
                      .writes("b", from_="g2.y")
                  .done()
                  .build())
        history = system.lockstep_run(3)
        assert history[-1]["a"] == 10 and history[-1]["b"] == 15

    def test_duplicate_output_rejected(self):
        builder = (SystemBuilder("dup").signal("x")
                   .actor("a", period_us=1000)
                   .block(SequenceFB("s", values=[1]))
                   .writes("x", from_="s.y"))
        with pytest.raises(ModelError):
            builder.writes("x", from_="s.y")

    def test_build_validates(self):
        builder = SystemBuilder("bad").signal("orphan")
        with pytest.raises(ValidationError):
            builder.build()

    def test_generated_firmware_equivalence(self):
        from repro.codegen import run_firmware_lockstep
        system = built_traffic_light()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        assert (run_firmware_lockstep(system, firmware, 40)
                == system.lockstep_run(40))


class TestModelInspector:
    def make(self, rounds=30):
        system = cruise_control_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware)
        kernel.run(ms(20) * rounds)
        return system, firmware, kernel, ModelInspector(system, firmware, kernel)

    def test_current_state_reads_target_ram(self):
        _, _, _, inspector = self.make(rounds=30)
        assert inspector.current_state("controller", "mode_logic") == "CRUISE"

    def test_machine_variables(self):
        system = (SystemBuilder("blink").signal("led")
                  .actor("blinky", period_us=ms(10))
                  .machine("blink", blinker_machine())
                  .writes("led", from_="blink.led")
                  .done().build())
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware)
        kernel.run(ms(10) * 2)  # releases at 0/10/20ms -> three jobs
        inspector = ModelInspector(system, firmware, kernel)
        # Third step fires OFF->ON, resetting the phase timer.
        assert inspector.current_state("blinky", "blink") == "ON"
        assert inspector.machine_variables("blinky", "blink") == {"t": 0}

    def test_signal_values_use_freshest_view(self):
        _, _, kernel, inspector = self.make(rounds=30)
        # 'speed' is produced on node1; its freshest value lives there.
        assert (inspector.signal_value("speed")
                == kernel.bus.read("node1", "speed"))

    def test_all_machines_summary(self):
        _, _, _, inspector = self.make(rounds=10)
        machines = inspector.all_machines()
        assert "controller.mode_logic" in machines

    def test_status_report_renders(self):
        _, _, _, inspector = self.make(rounds=10)
        report = inspector.status_report()
        assert "state machines:" in report and "signals:" in report
        assert "controller.mode_logic" in report

    def test_unknown_signal_rejected(self):
        _, _, _, inspector = self.make(rounds=2)
        with pytest.raises(DebuggerError):
            inspector.signal_value("ghost")

    def test_non_machine_block_rejected(self):
        _, _, _, inspector = self.make(rounds=2)
        with pytest.raises(DebuggerError):
            inspector.current_state("controller", "regulator")

    def test_inspection_does_not_perturb_target(self):
        system, firmware, kernel, inspector = self.make(rounds=10)
        cycles_before = kernel.board_of("node0").cpu.cycles
        inspector.status_report()
        assert kernel.board_of("node0").cpu.cycles == cycles_before
