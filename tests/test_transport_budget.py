"""Tests for per-session transport budgets over DebugLink accounting."""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.engine.session import DebugSession, TransportBudget
from repro.errors import BudgetExceededError, DebuggerError
from repro.util.timeunits import ms


def passive_session(budget=None):
    return DebugSession(traffic_light_system(), channel_kind="passive",
                        poll_period_us=500, budget=budget).setup()


class TestTransportBudget:
    def test_negative_ceiling_rejected(self):
        with pytest.raises(DebuggerError):
            TransportBudget(max_transactions=-1)

    def test_no_ceilings_never_violates(self):
        budget = TransportBudget()
        assert budget.violations({"transactions": 10**9,
                                  "cost_us_total": 10**9}) == []

    def test_violation_strings_name_the_ceiling(self):
        budget = TransportBudget(max_transactions=5, max_cost_us=100)
        found = budget.violations({"transactions": 7, "cost_us_total": 250})
        assert len(found) == 2
        assert "7 transactions > budget 5" in found[0]
        assert "250us" in found[1]


class TestSessionBudget:
    def test_stats_aggregate_across_node_links(self):
        session = passive_session()
        session.run(ms(20))
        stats = session.transport_stats()
        assert stats["links"] == 1
        # One scatter-read transaction per poll at 500us period (plus
        # the priming poll at start()).
        assert stats["transactions"] == ms(20) // 500 + 1
        assert stats["words_read"] > 0
        assert stats["cost_us_total"] > 0

    def test_generous_budget_passes(self):
        session = passive_session(TransportBudget(max_transactions=10_000))
        session.run(ms(20))
        assert not session.budget_failed
        assert session.budget_violations() == []

    def test_transaction_ceiling_fails_the_experiment(self):
        session = passive_session(TransportBudget(max_transactions=10))
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(20))
        assert session.budget_failed
        assert err.value.stats["transactions"] > 10
        assert any("transactions" in v for v in err.value.violations)

    def test_cost_ceiling_fails_the_experiment(self):
        session = passive_session(TransportBudget(max_cost_us=500))
        with pytest.raises(BudgetExceededError):
            session.run(ms(20))
        assert session.budget_failed

    def test_active_channel_budget_counts_frames(self):
        session = DebugSession(traffic_light_system(), channel_kind="active",
                               budget=TransportBudget(max_cost_us=0)).setup()
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(1000))  # several state changes' worth of frames
        assert err.value.stats["frames_carried"] > 0

    def test_budget_checked_per_run_not_per_setup(self):
        session = passive_session(TransportBudget(max_transactions=25))
        session.run(ms(10))  # 20 polls: inside budget
        assert not session.budget_failed
        with pytest.raises(BudgetExceededError):
            session.run_for(ms(10))  # cumulative books cross the ceiling


class TestPerChannelAttribution:
    def test_passive_traffic_books_under_passive_channel(self):
        session = passive_session()
        session.run(ms(10))
        stats = session.transport_stats()
        assert set(stats["channels"]) == {"passive"}
        row = stats["channels"]["passive"]
        assert row["links"] == 1
        assert row["transactions"] == stats["transactions"]
        assert row["cost_us_total"] == stats["cost_us_total"]

    def test_active_traffic_books_under_active_channel(self):
        from repro.comdes.examples import traffic_light_system
        session = DebugSession(traffic_light_system(),
                               channel_kind="active").setup()
        session.run(ms(500))
        stats = session.transport_stats()
        assert set(stats["channels"]) == {"active"}
        assert stats["channels"]["active"]["frames_carried"] > 0

    def test_inspect_link_registers_as_its_own_channel(self):
        from repro.debugger.gdb import SourceDebugger
        session = passive_session()
        node = session.system.nodes()[0]
        debugger = SourceDebugger(session.kernel.board_of(node),
                                  session.firmware)
        assert debugger.link.label == "inspect"
        session.add_debug_link(debugger.link)
        debugger.inspect_many([s.name for s in
                               session.firmware.symbols.symbols()][:4])
        stats = session.transport_stats()
        assert set(stats["channels"]) == {"passive", "inspect"}
        assert stats["channels"]["inspect"]["transactions"] == 1

    def test_global_violation_names_busiest_channel(self):
        session = passive_session(TransportBudget(max_transactions=10))
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(20))
        assert "busiest channel: passive" in err.value.violations[0]

    def test_per_channel_ceiling_names_the_channel(self):
        budget = TransportBudget(per_channel={
            "passive": TransportBudget(max_transactions=5)})
        session = passive_session(budget)
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(20))
        assert err.value.violations[0].startswith("channel 'passive':")

    def test_per_channel_budget_for_quiet_channel_passes(self):
        budget = TransportBudget(per_channel={
            "active": TransportBudget(max_transactions=0)})
        session = passive_session(budget)
        # absent channel: informative warning, but no budget failure
        with pytest.warns(UserWarning, match="cannot be enforced"):
            session.run(ms(20))
        assert not session.budget_failed

    def test_absent_channel_label_warns_once(self):
        # a typo'd label ('pasive') can never be enforced; say so
        import warnings
        budget = TransportBudget(per_channel={
            "pasive": TransportBudget(max_transactions=5)})
        session = passive_session(budget)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.run(ms(5))
            session.run_for(ms(5))
        said = [w for w in caught if "pasive" in str(w.message)]
        assert len(said) == 1  # once per session, not per run
        assert "cannot be enforced" in str(said[0].message)

    def test_add_debug_link_is_idempotent(self):
        session = passive_session()
        session.run(ms(5))
        before = session.transport_stats()["transactions"]
        node = session.system.nodes()[0]
        # relabeling an already-tracked per-node link must not double-book
        session.add_debug_link(session.links[node])
        session.add_debug_link(session.links[node])
        assert session.transport_stats()["transactions"] == before

    def test_nested_per_channel_budget_rejected(self):
        # channel stats rows carry no further breakdown: a nested
        # sub-budget could never fire, so refuse it at construction
        with pytest.raises(DebuggerError):
            TransportBudget(per_channel={"passive": TransportBudget(
                per_channel={"inspect": TransportBudget(max_cost_us=0)})})

    def test_raw_stats_without_channels_still_work(self):
        # violations() accepts bare aggregate dicts (no breakdown)
        budget = TransportBudget(max_transactions=5)
        found = budget.violations({"transactions": 7, "cost_us_total": 0})
        assert found == ["7 transactions > budget 5"]
