"""Tests for per-session transport budgets over DebugLink accounting."""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.engine.session import DebugSession, TransportBudget
from repro.errors import BudgetExceededError, DebuggerError
from repro.util.timeunits import ms


def passive_session(budget=None):
    return DebugSession(traffic_light_system(), channel_kind="passive",
                        poll_period_us=500, budget=budget).setup()


class TestTransportBudget:
    def test_negative_ceiling_rejected(self):
        with pytest.raises(DebuggerError):
            TransportBudget(max_transactions=-1)

    def test_no_ceilings_never_violates(self):
        budget = TransportBudget()
        assert budget.violations({"transactions": 10**9,
                                  "cost_us_total": 10**9}) == []

    def test_violation_strings_name_the_ceiling(self):
        budget = TransportBudget(max_transactions=5, max_cost_us=100)
        found = budget.violations({"transactions": 7, "cost_us_total": 250})
        assert len(found) == 2
        assert "7 transactions > budget 5" in found[0]
        assert "250us" in found[1]


class TestSessionBudget:
    def test_stats_aggregate_across_node_links(self):
        session = passive_session()
        session.run(ms(20))
        stats = session.transport_stats()
        assert stats["links"] == 1
        # One scatter-read transaction per poll at 500us period (plus
        # the priming poll at start()).
        assert stats["transactions"] == ms(20) // 500 + 1
        assert stats["words_read"] > 0
        assert stats["cost_us_total"] > 0

    def test_generous_budget_passes(self):
        session = passive_session(TransportBudget(max_transactions=10_000))
        session.run(ms(20))
        assert not session.budget_failed
        assert session.budget_violations() == []

    def test_transaction_ceiling_fails_the_experiment(self):
        session = passive_session(TransportBudget(max_transactions=10))
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(20))
        assert session.budget_failed
        assert err.value.stats["transactions"] > 10
        assert any("transactions" in v for v in err.value.violations)

    def test_cost_ceiling_fails_the_experiment(self):
        session = passive_session(TransportBudget(max_cost_us=500))
        with pytest.raises(BudgetExceededError):
            session.run(ms(20))
        assert session.budget_failed

    def test_active_channel_budget_counts_frames(self):
        session = DebugSession(traffic_light_system(), channel_kind="active",
                               budget=TransportBudget(max_cost_us=0)).setup()
        with pytest.raises(BudgetExceededError) as err:
            session.run(ms(1000))  # several state changes' worth of frames
        assert err.value.stats["frames_carried"] > 0

    def test_budget_checked_per_run_not_per_setup(self):
        session = passive_session(TransportBudget(max_transactions=25))
        session.run(ms(10))  # 20 polls: inside budget
        assert not session.budget_failed
        with pytest.raises(BudgetExceededError):
            session.run_for(ms(10))  # cumulative books cross the ceiling
