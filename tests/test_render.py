"""Tests for geometry, scene graph, layouts and render backends."""

import pytest

from repro.errors import RenderError
from repro.render.animation import FrameSequence
from repro.render.ascii_art import scene_to_ascii
from repro.render.geometry import Point, Rect
from repro.render.layout import (
    assert_no_overlap, circular_layout, grid_layout, layered_layout,
)
from repro.render.scene import Scene, SceneNode
from repro.render.svg import scene_to_svg


class TestGeometry:
    def test_center_right_bottom(self):
        rect = Rect(2, 3, 10, 4)
        assert rect.center == Point(7, 5)
        assert rect.right == 12 and rect.bottom == 7

    def test_contains(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.contains(Point(0, 0)) and rect.contains(Point(4, 4))
        assert not rect.contains(Point(5, 0))

    def test_intersects(self):
        assert Rect(0, 0, 4, 4).intersects(Rect(2, 2, 4, 4))
        assert not Rect(0, 0, 4, 4).intersects(Rect(4, 0, 4, 4))  # touching

    def test_union_and_inflate(self):
        union = Rect(0, 0, 2, 2).union(Rect(5, 5, 2, 2))
        assert union == Rect(0, 0, 7, 7)
        assert Rect(2, 2, 2, 2).inflate(1) == Rect(1, 1, 4, 4)


class TestScene:
    def test_duplicate_id_rejected(self):
        scene = Scene()
        scene.add(SceneNode("a", "rect", Rect(0, 0, 2, 2)))
        with pytest.raises(RenderError):
            scene.add(SceneNode("a", "rect", Rect(0, 0, 2, 2)))

    def test_unknown_shape_rejected(self):
        with pytest.raises(RenderError):
            SceneNode("x", "blob", Rect(0, 0, 1, 1))

    def test_edge_needs_endpoints(self):
        with pytest.raises(RenderError):
            SceneNode("x", "arrow", Rect(0, 0, 1, 1))

    def test_z_order(self):
        scene = Scene()
        scene.add(SceneNode("top", "rect", Rect(0, 0, 2, 2), z=5))
        scene.add(SceneNode("bottom", "rect", Rect(0, 0, 2, 2), z=1))
        assert [n.id for n in scene.nodes()] == ["bottom", "top"]

    def test_bounds(self):
        scene = Scene()
        scene.add(SceneNode("a", "rect", Rect(0, 0, 2, 2)))
        scene.add(SceneNode("b", "rect", Rect(10, 10, 4, 4)))
        assert scene.bounds() == Rect(0, 0, 14, 14)

    def test_empty_scene_bounds(self):
        assert Scene().bounds() == Rect(0, 0, 1, 1)


class TestLayouts:
    def test_grid_no_overlap(self):
        placement = grid_layout([f"n{i}" for i in range(17)])
        assert_no_overlap(placement)

    def test_grid_respects_columns(self):
        placement = grid_layout(["a", "b", "c"], columns=2,
                                cell_w=10, cell_h=4, gap=2)
        assert placement["a"].y == placement["b"].y
        assert placement["c"].y > placement["a"].y

    def test_circular_no_overlap(self):
        placement = circular_layout([f"s{i}" for i in range(12)])
        assert_no_overlap(placement)

    def test_circular_single_element(self):
        placement = circular_layout(["only"])
        assert placement["only"].x == 0

    def test_layered_orders_dag_left_to_right(self):
        ids = ["src", "mid", "dst"]
        edges = [("src", "mid"), ("mid", "dst")]
        placement = layered_layout(ids, edges)
        assert placement["src"].x < placement["mid"].x < placement["dst"].x
        assert_no_overlap(placement)

    def test_layered_unknown_edge_rejected(self):
        with pytest.raises(RenderError):
            layered_layout(["a"], [("a", "ghost")])

    def test_empty_layouts(self):
        assert grid_layout([]) == {}
        assert circular_layout([]) == {}


class TestBackends:
    def demo_scene(self):
        scene = Scene(title="demo")
        scene.add(SceneNode("box", "rect", Rect(0, 0, 12, 4), label="BOX"))
        scene.add(SceneNode("dot", "circle", Rect(16, 0, 8, 4), label="DOT",
                            style={"highlighted": "true"}))
        scene.add(SceneNode("edge", "arrow", Rect(0, 0, 16, 2),
                            endpoints=(Point(12, 2), Point(16, 2))))
        return scene

    def test_ascii_contains_labels_and_highlight(self):
        art = scene_to_ascii(self.demo_scene())
        assert "BOX" in art
        assert "*DOT*" in art    # highlight marker
        assert "[demo]" in art

    def test_svg_structure(self):
        svg = scene_to_svg(self.demo_scene())
        assert svg.startswith("<svg")
        assert "<rect" in svg and "<ellipse" in svg and "<line" in svg
        assert "marker-end" in svg     # arrowhead
        assert "BOX" in svg

    def test_svg_highlight_changes_fill(self):
        plain = self.demo_scene()
        svg = scene_to_svg(plain)
        assert "#ffd54d" in svg  # highlight fill present for DOT

    def test_error_style_renders(self):
        scene = Scene()
        scene.add(SceneNode("bad", "rect", Rect(0, 0, 8, 3), label="X",
                            style={"error": "true"}))
        assert "!X!" in scene_to_ascii(scene)
        assert "#ff6b6b" in scene_to_svg(scene)


class TestFrameSequence:
    def test_capture_and_query(self):
        frames = FrameSequence()
        frames.capture(100, "cmd1", {"el#1": {"highlighted": "true"}})
        frames.capture(200, "cmd2", {"el#1": {}})
        assert len(frames) == 2
        assert frames[0].highlighted() == ["el#1"]
        assert frames[1].highlighted() == []

    def test_styles_are_snapshots(self):
        style = {"el#1": {"highlighted": "true"}}
        frames = FrameSequence()
        frames.capture(1, "x", style)
        style["el#1"]["highlighted"] = "false"
        assert frames[0].highlighted() == ["el#1"]

    def test_max_frames_drops(self):
        frames = FrameSequence(max_frames=2)
        for t in range(5):
            frames.capture(t, "x", {})
        assert len(frames) == 2 and frames.dropped == 3

    def test_frame_at_time(self):
        frames = FrameSequence()
        frames.capture(100, "a", {})
        frames.capture(200, "b", {})
        assert frames.frame_at_time(50) is None
        assert frames.frame_at_time(150).trigger == "a"
        assert frames.frame_at_time(999).trigger == "b"
