"""Explicit coverage of DebugSession's merged transport accounting.

``DebugSession.transport_stats()`` is the one surface where the chaos
layer (faulty-wire absorption), the retry layer (retries/timeouts) and
the degradation policy (events ladder) meet: its key set is the merged
contract budget ceilings and dashboards are written against, so this
file pins it — top-level totals, per-channel breakdown rows,
``projected_stats`` sharing the same shape, and the degradation-event
ladder showing up both on the stats surface and (when telemetry is
on) as ``session.degradation``/``transport.*`` registry series.
"""

import pytest

from repro.comdes.examples import traffic_light_system
from repro.comm.chaos import ChaosConfig
from repro.comm.retry import RetryPolicy
from repro.engine.session import (
    DebugSession,
    DegradationPolicy,
    TransportBudget,
)
from repro.obs import disable, enable
from repro.util.timeunits import ms

#: the merged cross-layer key set: link counters + retry absorption +
#: structure + degradation — THE contract of transport_stats()
TOTAL_KEYS = {
    "transactions", "words_read", "words_written", "frames_carried",
    "cost_us_total",              # link accounting
    "retries", "timeouts",        # retry-layer absorption
    "links", "channels",          # structure
    "degradations",               # degradation-policy events
}
CHANNEL_ROW_KEYS = (TOTAL_KEYS - {"channels", "degradations"})


@pytest.fixture(autouse=True)
def _obs_off():
    disable()
    yield
    disable()


def passive_session(**kw):
    defaults = dict(
        chaos=ChaosConfig(seed=7, transient_error=0.15, read_corrupt=0.02),
        retry=RetryPolicy(max_attempts=5, backoff_us=50, seed=7),
    )
    defaults.update(kw)
    return DebugSession(traffic_light_system(), channel_kind="passive",
                        poll_period_us=500, **defaults).setup()


class TestMergedKeySet:
    def test_total_key_set_is_the_merged_contract(self):
        session = passive_session()
        session.run(ms(20))
        stats = session.transport_stats()
        assert set(stats) == TOTAL_KEYS
        for row in stats["channels"].values():
            assert set(row) == CHANNEL_ROW_KEYS

    def test_chaos_and_retry_layers_feed_the_same_books(self):
        session = passive_session()
        session.run(ms(20))
        stats = session.transport_stats()
        assert stats["retries"] > 0  # chaos really injected, retry absorbed
        assert stats["channels"]["passive"]["retries"] == stats["retries"]

    def test_bare_links_report_zero_not_missing(self):
        session = passive_session(chaos=None, retry=None)
        session.run(ms(5))
        stats = session.transport_stats()
        assert set(stats) == TOTAL_KEYS  # keys present even with no layer
        assert stats["retries"] == 0 and stats["timeouts"] == 0
        assert stats["degradations"] == 0

    def test_projected_stats_same_shape_and_monotone(self):
        session = passive_session(chaos=None, retry=None)
        session.run(ms(5))
        now = session.transport_stats()
        projected = session.projected_stats(ms(20))
        assert set(projected) == TOTAL_KEYS
        assert projected["transactions"] > now["transactions"]
        assert projected["cost_us_total"] >= now["cost_us_total"]
        assert set(projected["channels"]) == set(now["channels"])


class TestDegradationInSnapshots:
    def degraded_session(self):
        return passive_session(
            chaos=None, retry=None,
            budget=TransportBudget(max_transactions=3),
            degradation=DegradationPolicy(max_slowdown=2, max_stride=2))

    def test_ladder_counted_in_transport_stats(self):
        session = self.degraded_session()
        session.run(ms(20))
        actions = [e["action"] for e in session.degradation_events]
        assert actions[0] == "slow_poll"
        assert "split_plan" in actions and "shed_watch" in actions
        assert (session.transport_stats()["degradations"]
                == len(session.degradation_events))

    def test_ladder_appears_in_registry_snapshot(self):
        reg, _ = enable()
        session = self.degraded_session()
        session.run(ms(20))
        snap = reg.snapshot()
        per_action = {dict(key)["action"]: value
                      for key, value in snap.series("session.degradation")}
        want = {}
        for event in session.degradation_events:
            want[str(event["action"])] = want.get(str(event["action"]), 0) + 1
        assert per_action == want
        # and the canonical transport totals ride along as transport.*
        assert (snap.counter_total("transport.transactions")
                == session.transport_stats()["transactions"])
        assert (snap.counter_total("transport.degradations")
                == len(session.degradation_events))

    def test_transport_series_tracks_stats_surface(self):
        reg, _ = enable()
        session = passive_session()
        session.run(ms(20))
        snap = reg.snapshot()
        stats = session.transport_stats()
        for key in ("transactions", "words_read", "retries", "timeouts",
                    "cost_us_total"):
            assert snap.counter_total(f"transport.{key}") == stats[key], key
