"""Tests for the GDM core: patterns, mapping, abstraction, guide, reactions."""

import pytest

from repro.comdes.examples import cruise_control_system, traffic_light_system
from repro.comdes.reflect import system_to_model
from repro.comm.protocol import Command, CommandKind
from repro.errors import AbstractionError
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.guide import AbstractionGuide
from repro.gdm.mapping import MappingRule, MappingTable, default_comdes_table
from repro.gdm.metamodel import gdm_metamodel
from repro.gdm.model import CommandBinding, GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.reactions import ReactionKind, apply_reaction, decay_pulses
from repro.gdm.scenegen import gdm_to_scene
from repro.meta.validate import validate_model


def traffic_gdm():
    model = system_to_model(traffic_light_system())
    table = default_comdes_table(model.metamodel)
    return AbstractionEngine(table).build(model), model


class TestPatterns:
    def test_from_name_case_insensitive(self):
        assert PatternKind.from_name("rectangle") is PatternKind.RECTANGLE
        assert PatternKind.from_name("Arrow") is PatternKind.ARROW

    def test_unknown_pattern_rejected(self):
        with pytest.raises(AbstractionError):
            PatternKind.from_name("hexagon")

    def test_edge_detection(self):
        assert PatternKind.ARROW.is_edge and PatternKind.LINE.is_edge
        assert not PatternKind.CIRCLE.is_edge

    def test_spec_size_validation(self):
        with pytest.raises(AbstractionError):
            PatternSpec(PatternKind.CIRCLE, width=0)


class TestMappingTable:
    def test_pairing_requires_known_metaclass(self):
        model = system_to_model(traffic_light_system())
        table = MappingTable(model.metamodel)
        with pytest.raises(AbstractionError):
            table.pair(MappingRule("Martian",
                                   PatternSpec(PatternKind.CIRCLE)))

    def test_rule_inheritance_lookup(self):
        model = system_to_model(traffic_light_system())
        table = MappingTable(model.metamodel)
        table.pair(MappingRule("FunctionBlock",
                               PatternSpec(PatternKind.RECTANGLE)))
        # StateMachineFB inherits FunctionBlock's rule.
        assert table.rule_for("StateMachineFB").metaclass_name == "FunctionBlock"

    def test_unpair(self):
        model = system_to_model(traffic_light_system())
        table = default_comdes_table(model.metamodel)
        table.unpair("Signal")
        assert table.rule_for("Signal") is None
        with pytest.raises(AbstractionError):
            table.unpair("Signal")

    def test_edge_rule_needs_edge_pattern(self):
        model = system_to_model(traffic_light_system())
        MappingTable(model.metamodel)
        with pytest.raises(AbstractionError):
            MappingRule("Transition", PatternSpec(PatternKind.CIRCLE),
                        render_as="edge")
        with pytest.raises(AbstractionError):
            MappingRule("State", PatternSpec(PatternKind.ARROW),
                        render_as="node")


class TestAbstraction:
    def test_elements_created_for_node_rules(self):
        gdm, model = traffic_gdm()
        state_elements = [e for e in gdm.elements.values()
                          if e.source_path.startswith("state:")]
        assert len(state_elements) == 3

    def test_links_resolve_transition_endpoints(self):
        gdm, _ = traffic_gdm()
        trans_links = [l for l in gdm.links.values()
                       if l.source_path.startswith("trans:")]
        assert len(trans_links) == 7
        for link in trans_links:
            assert gdm.elements[link.src_id].source_path.startswith("state:")
            assert gdm.elements[link.dst_id].source_path.startswith("state:")

    def test_connection_links_resolve_block_endpoints(self):
        model = system_to_model(cruise_control_system())
        gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
        conn_links = [l for l in gdm.links.values()
                      if l.source_path.startswith("conn:")]
        assert conn_links

    def test_states_grouped_by_machine(self):
        gdm, _ = traffic_gdm()
        red = gdm.element_by_path("state:lights.lamp.RED")
        assert red.group
        assert len(gdm.elements_in_group(red.group)) == 3

    def test_layout_assigned(self):
        gdm, _ = traffic_gdm()
        for element in gdm.elements.values():
            assert element.rect is not None

    def test_default_bindings_installed(self):
        gdm, _ = traffic_gdm()
        kinds = {(b.command_kind, b.reaction) for b in gdm.bindings}
        assert (CommandKind.STATE_ENTER, "HIGHLIGHT") in kinds
        assert (CommandKind.SIG_UPDATE, "ANNOTATE") in kinds

    def test_empty_mapping_rejected(self):
        model = system_to_model(traffic_light_system())
        table = MappingTable(model.metamodel)
        with pytest.raises(AbstractionError):
            AbstractionEngine(table).build(model)

    def test_wrong_metamodel_rejected(self):
        model = system_to_model(traffic_light_system())
        other_table = MappingTable(gdm_metamodel())
        with pytest.raises(AbstractionError):
            AbstractionEngine(other_table).build(model)

    def test_gdm_reflective_form_validates(self):
        gdm, _ = traffic_gdm()
        meta = gdm.to_meta_model()
        validate_model(meta)
        assert len(meta.objects_of("GraphicalElement")) == len(gdm.elements)
        assert len(meta.objects_of("CommandBinding")) == len(gdm.bindings)


class TestGuide:
    def test_element_list_shows_instance_counts(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        counts = dict(guide.element_list())
        assert counts["State"] == 3
        assert counts["Transition"] == 7

    def test_manual_pairing_workflow(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Circle", group_by_container=True)
        guide.pair("Transition", "Arrow")
        guide.pair("Signal", "Triangle")
        guide.delete_pairing("Signal")
        assert guide.pairings() == [("State", "Circle"),
                                    ("Transition", "Arrow")]
        gdm = guide.finish()
        assert len(gdm.elements) == 3  # states only

    def test_finish_requires_node_rule(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("Transition", "Arrow")
        with pytest.raises(AbstractionError):
            guide.finish()

    def test_finish_is_single_shot(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Circle")
        guide.finish()
        with pytest.raises(AbstractionError):
            guide.pair("Signal", "Triangle")

    def test_dialog_renders_fig4_parts(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Circle")
        dialog = guide.render_dialog()
        assert "Meta-model elements" in dialog
        assert "GDM pattern options" in dialog
        assert "State -> Circle" in dialog
        assert "ABSTRACTION FINISHED" in dialog


class TestReactions:
    def command(self, path, value=0, kind=CommandKind.STATE_ENTER):
        return Command(kind, path, value, t_target=10, t_host=20)

    def test_highlight_is_exclusive_within_group(self):
        gdm, _ = traffic_gdm()
        red_path = "state:lights.lamp.RED"
        green_path = "state:lights.lamp.GREEN"
        binding = CommandBinding(CommandKind.STATE_ENTER, red_path, "HIGHLIGHT")
        apply_reaction(gdm, binding, self.command(red_path))
        binding2 = CommandBinding(CommandKind.STATE_ENTER, green_path, "HIGHLIGHT")
        apply_reaction(gdm, binding2, self.command(green_path))
        assert not gdm.element_by_path(red_path).highlighted
        assert gdm.element_by_path(green_path).highlighted

    def test_annotate_sets_value(self):
        gdm, _ = traffic_gdm()
        binding = CommandBinding(CommandKind.SIG_UPDATE, "signal:light",
                                 "ANNOTATE")
        apply_reaction(gdm, binding,
                       self.command("signal:light", 2, CommandKind.SIG_UPDATE))
        assert gdm.element_by_path("signal:light").style["value"] == "2"

    def test_mark_error(self):
        gdm, _ = traffic_gdm()
        path = "state:lights.lamp.RED"
        binding = CommandBinding(CommandKind.STATE_ENTER, path, "MARK_ERROR")
        apply_reaction(gdm, binding, self.command(path))
        assert gdm.element_by_path(path).style["error"] == "true"

    def test_unmapped_path_returns_none(self):
        gdm, _ = traffic_gdm()
        binding = CommandBinding(CommandKind.STATE_ENTER, "state:ghost.x.S",
                                 "HIGHLIGHT")
        assert apply_reaction(gdm, binding,
                              self.command("state:ghost.x.S")) is None

    def test_link_pulse(self):
        gdm, _ = traffic_gdm()
        link = next(l for l in gdm.links.values()
                    if l.source_path.startswith("trans:"))
        binding = CommandBinding(CommandKind.TRANS_FIRED, link.source_path,
                                 "PULSE")
        record = apply_reaction(
            gdm, binding,
            self.command(link.source_path, kind=CommandKind.TRANS_FIRED))
        assert record is not None
        assert link.style["pulse"] == "true"

    def test_decay_pulses(self):
        gdm, _ = traffic_gdm()
        path = "state:lights.lamp.RED"
        binding = CommandBinding(CommandKind.STATE_ENTER, path, "PULSE")
        apply_reaction(gdm, binding, self.command(path))
        affected = decay_pulses(gdm)
        assert gdm.element_by_path(path).id in affected
        assert "pulse" not in gdm.element_by_path(path).style

    def test_wildcard_selector(self):
        binding = CommandBinding(CommandKind.STATE_ENTER,
                                 "state:lights.lamp.*", "HIGHLIGHT")
        assert binding.matches(self.command("state:lights.lamp.RED"))
        assert not binding.matches(self.command("state:other.lamp.RED"))

    def test_kind_mismatch_not_matched(self):
        binding = CommandBinding(CommandKind.SIG_UPDATE, "signal:light",
                                 "ANNOTATE")
        assert not binding.matches(self.command("signal:light"))


class TestSceneGeneration:
    def test_scene_covers_elements_and_links(self):
        gdm, _ = traffic_gdm()
        scene = gdm_to_scene(gdm)
        assert len(scene) == len(gdm.elements) + len(gdm.links)

    def test_highlight_carried_to_scene_style(self):
        gdm, _ = traffic_gdm()
        path = "state:lights.lamp.RED"
        gdm.element_by_path(path).style["highlighted"] = "true"
        scene = gdm_to_scene(gdm)
        node = scene.node(gdm.element_by_path(path).id)
        assert node.style["highlighted"] == "true"

    def test_missing_layout_raises(self):
        gdm = GdmModel("g")
        gdm.add_element("x", PatternSpec(PatternKind.CIRCLE), "state:a.b.X")
        from repro.errors import RenderError
        with pytest.raises(RenderError):
            gdm_to_scene(gdm)


class TestCustomTemplates:
    """The paper's "customized graphical model templates" feature."""

    def test_guide_custom_fill_and_size(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Circle", fill="#aaddff", width=20, height=8,
                   group_by_container=True)
        gdm = guide.finish()
        element = gdm.element_by_path("state:lights.lamp.RED")
        assert element.pattern.fill == "#aaddff"
        assert element.pattern.width == 20
        assert element.rect.w == 20 and element.rect.h == 8

    def test_custom_fill_reaches_svg(self):
        from repro.render.svg import scene_to_svg
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Rectangle", fill="#123456",
                   group_by_container=True)
        gdm = guide.finish()
        svg = scene_to_svg(gdm_to_scene(gdm))
        assert "#123456" in svg

    def test_custom_stroke_reaches_scene(self):
        model = system_to_model(traffic_light_system())
        guide = AbstractionGuide(model)
        guide.pair("State", "Circle", stroke="#ff0000")
        gdm = guide.finish()
        scene = gdm_to_scene(gdm)
        node = scene.node(next(iter(gdm.elements)))
        assert node.style["stroke"] == "#ff0000"
