"""The spill-ring helper is shared, not mirrored.

ROADMAP named the bug: the persist-first/overwrite-at-head policy was
duplicated *by convention* in ``ExecutionTrace.record`` and
``DtmKernel._append_record`` — two hand-maintained copies that could
silently drift. These tests lock in the fix: one
:class:`repro.tracedb.spillring.SpillRing` class, held by both
recorders, with behavioral parity on eviction order, seq continuation
and the ``dropped == 0``-while-spilling invariant.
"""

import pytest

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.comm.protocol import Command, CommandKind
from repro.engine.trace import ExecutionTrace
from repro.rtos.kernel import DtmKernel
from repro.tracedb import SpillRing, TraceStore
from repro.util.timeunits import ms


def cmd(i: int) -> Command:
    return Command(CommandKind.SIG_UPDATE, f"signal:s{i % 3}", i,
                   t_target=i * 10, t_host=i * 10 + 1)


def fill(trace: ExecutionTrace, n: int) -> None:
    for i in range(n):
        trace.record(cmd(i), [], "animating")


class TestSharedHelper:
    """Both recorders hold the one SpillRing — the structural mirror."""

    def test_execution_trace_uses_spillring(self):
        assert type(ExecutionTrace(capacity=4)._ring) is SpillRing

    def test_dtm_kernel_uses_spillring(self):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware, record_capacity=4)
        assert type(kernel._ring) is SpillRing
        # the literal same class object, not a same-named copy
        assert type(kernel._ring) is type(ExecutionTrace(capacity=4)._ring)

    def test_kernel_ring_parity_with_unbounded_run(self):
        """Same eviction behavior through the kernel call site: the ring
        keeps exactly the newest N of what an unbounded kernel records,
        in the same order, and counts the rest as dropped."""
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        full = DtmKernel(system, firmware)
        full.run(ms(3000))
        ringed = DtmKernel(system, firmware, record_capacity=6)
        ringed.run(ms(3000))
        key = lambda r: (r.actor, r.index, r.release, r.completion)
        assert [key(r) for r in ringed.records] \
            == [key(r) for r in full.records[-6:]]
        assert ringed.records_dropped == len(full.records) - 6

    def test_spilling_kernel_drops_nothing(self, tmp_path):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        store = TraceStore(str(tmp_path / "jobs"), segment_events=16)
        kernel = DtmKernel(system, firmware, record_capacity=6,
                           record_spill=store)
        kernel.run(ms(3000))
        assert kernel.records_dropped == 0
        assert len(list(kernel.spilled_records())) > len(kernel.records)


class TestRingBehavior:
    """The policy itself, unit-level (what both recorders inherit)."""

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpillRing(0)
        with pytest.raises(ValueError):
            SpillRing(-3)

    def test_unbounded_keeps_everything(self):
        ring = SpillRing()
        for i in range(10):
            ring.append(i)
        assert ring.snapshot() == list(range(10))
        assert ring.dropped == 0

    def test_eviction_order_is_oldest_first(self):
        ring = SpillRing(capacity=4)
        for i in range(11):
            ring.append(i)
        assert ring.snapshot() == [7, 8, 9, 10]
        assert [ring.at(i) for i in range(4)] == [7, 8, 9, 10]
        assert ring.at(-1) == 10
        assert ring.dropped == 7

    def test_at_rejects_out_of_range(self):
        ring = SpillRing(capacity=2)
        for i in range(5):
            ring.append(i)
        with pytest.raises(IndexError):
            ring.at(2)

    def test_spill_receives_every_item_and_dropped_stays_zero(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=4)
        ring = SpillRing(capacity=3, spill=store)
        encoded = []

        def encode(item):
            encoded.append(item)
            return {"v": item, "seq": item}

        for i in range(9):
            ring.append(i, encode=encode)
        assert ring.dropped == 0
        assert ring.snapshot() == [6, 7, 8]
        assert encoded == list(range(9))          # persist-first, every item
        assert [r["v"] for r in store.events()] == list(range(9))

    def test_encode_not_called_without_spill(self):
        ring = SpillRing(capacity=2)
        ring.append(1, encode=lambda item: pytest.fail(
            "encode must not run for in-memory rings"))
        assert ring.snapshot() == [1]

    def test_seq_line_continues_a_resumed_store(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"))
        for i in range(7):
            store.append({"v": i})
        store.close()
        resumed = TraceStore.open(str(tmp_path / "s"))
        ring = SpillRing(capacity=4, spill=resumed)
        assert ring.next_seq == 7
        ring.append("x", encode=lambda item: {"v": item})
        assert ring.next_seq == 8

    def test_trace_and_raw_ring_agree_on_window(self, tmp_path):
        """Behavioral parity: the trace's window is exactly the ring's."""
        trace = ExecutionTrace(capacity=5)
        ring = SpillRing(capacity=5)
        for i in range(13):
            ring.append(i)
        fill(trace, 13)
        assert [e.seq for e in trace] == ring.snapshot()
        assert trace.dropped == ring.dropped == 8
