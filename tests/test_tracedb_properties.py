"""Property tests (hypothesis): codec round trips, spill/reload/replay
equivalence against pure in-memory replay, checkpointed-seek equality,
and merge canonical-ordering invariance."""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.protocol import Command, CommandKind
from repro.engine.replay import ReplayPlayer
from repro.engine.trace import ExecutionTrace
from repro.gdm.model import GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.reactions import ReactionKind, ReactionRecord
from repro.tracedb import CODECS, StoredTrace, TraceStore, build_checkpoints
from repro.tracedb.collect import merge_job_stores
from repro.tracedb.format import encode_record
from repro.tracedb.segment import SegmentWriter, read_segment

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.function_scoped_fixture])

#: JSON-safe scalar values a record field can carry
scalars = st.one_of(st.integers(-2**40, 2**40), st.booleans(),
                    st.text(max_size=12), st.none())

records = st.fixed_dictionaries(
    {"t_target": st.integers(0, 10**9)},
    optional={"kind": st.sampled_from([k.name for k in CommandKind]),
              "path": st.text(max_size=20),
              "value": scalars,
              "reactions": st.lists(
                  st.fixed_dictionaries({"element": st.text(max_size=6)}),
                  max_size=3)},
)


def build_gdm(n_states=3):
    gdm = GdmModel("prop")
    box = PatternSpec(PatternKind.RECTANGLE)
    for i in range(n_states):
        gdm.add_element(f"S{i}", box, f"state:m.S{i}", group="m")
    gdm.add_element("x", box, "signal:x")
    return gdm


def events_from_choices(choices):
    """Deterministic (command, reactions) stream from a choice list."""
    gdm = build_gdm()
    ids = [gdm.element_by_path(f"state:m.S{i}").id for i in range(3)]
    x_id = gdm.element_by_path("signal:x").id
    out = []
    for i, choice in enumerate(choices):
        t = i * 5
        if choice < 3:
            path = f"state:m.S{choice}"
            command = Command(CommandKind.STATE_ENTER, path, 1,
                              t_target=t, t_host=t + 1)
            reactions = [ReactionRecord(ReactionKind.HIGHLIGHT, ids[choice],
                                        path, "highlight", t + 1)]
        elif choice == 3:
            command = Command(CommandKind.SIG_UPDATE, "signal:x", i,
                              t_target=t, t_host=t + 1)
            reactions = [ReactionRecord(ReactionKind.ANNOTATE, x_id,
                                        "signal:x", f"value={i}", t + 1)]
        else:
            command = Command(CommandKind.SIG_UPDATE, "signal:x", i,
                              t_target=t, t_host=t + 1)
            reactions = [ReactionRecord(ReactionKind.PULSE, x_id,
                                        "signal:x", "pulse", t + 1)]
        out.append((command, reactions))
    return out


class TestCodecRoundTrip:
    @SETTINGS
    @given(batch=st.lists(records, max_size=20),
           codec_name=st.sampled_from(sorted(CODECS)))
    def test_segment_roundtrip_preserves_records(self, tmp_path, batch,
                                                 codec_name):
        for i, record in enumerate(batch):
            record["seq"] = i
        path = tmp_path / f"seg-{codec_name}-{len(batch)}.trc"
        writer = SegmentWriter(str(tmp_path), path.name,
                               CODECS[codec_name], 0)
        for record in batch:
            writer.append(record)
        writer.close()
        assert list(read_segment(str(path))) == batch

    @SETTINGS
    @given(record=records)
    def test_encoding_is_deterministic(self, record):
        reordered = dict(reversed(list(record.items())))
        assert encode_record(record) == encode_record(reordered)


class TestSpillReplayEquivalence:
    @SETTINGS
    @given(choices=st.lists(st.integers(0, 4), min_size=1, max_size=120),
           capacity=st.integers(1, 16),
           segment_events=st.integers(1, 32),
           codec_name=st.sampled_from(sorted(CODECS)))
    def test_spill_reload_replay_is_bit_identical(self, tmp_path, choices,
                                                  capacity, segment_events,
                                                  codec_name):
        # hypothesis reuses tmp_path across examples: every store (an
        # attach-on-exist resource) needs a fresh root
        root = os.path.join(tempfile.mkdtemp(dir=tmp_path), "store")
        store = TraceStore(root, segment_events=segment_events,
                           codec=codec_name)
        ring = ExecutionTrace(capacity=capacity, spill=store)
        ref = ExecutionTrace()
        for command, reactions in events_from_choices(choices):
            ring.record(command, reactions, "REACTING")
            ref.record(command, reactions, "REACTING")
        store.close()

        assert ring.dropped == 0
        view = StoredTrace(TraceStore.open(root))
        assert [e.to_dict() for e in view] == ref.to_dicts()

        gdm_a, gdm_b = build_gdm(), build_gdm()
        p_ref = ReplayPlayer(ref, gdm_a)
        p_ref.start()
        p_ref.run_to_end()
        p_view = ReplayPlayer(view, gdm_b)
        p_view.start()
        p_view.run_to_end()
        assert gdm_a.dynamic_state() == gdm_b.dynamic_state()
        assert ([(f.t_us, f.styles) for f in p_ref.frames.frames()]
                == [(f.t_us, f.styles) for f in p_view.frames.frames()])

    @SETTINGS
    @given(choices=st.lists(st.integers(0, 4), min_size=2, max_size=80),
           every=st.integers(1, 20),
           data=st.data())
    def test_checkpointed_seek_equals_linear(self, tmp_path, choices, every,
                                             data):
        root = os.path.join(tempfile.mkdtemp(dir=tmp_path), "store")
        store = TraceStore(root, segment_events=16)
        ref = ExecutionTrace(spill=store)
        for command, reactions in events_from_choices(choices):
            ref.record(command, reactions, "REACTING")
        build_checkpoints(store, build_gdm(), every=every)
        position = data.draw(st.integers(0, len(choices)))

        gdm_ck = build_gdm()
        applied = ReplayPlayer(StoredTrace(store), gdm_ck).seek(position)
        gdm_lin = build_gdm()
        ReplayPlayer(ref, gdm_lin).seek(position, use_checkpoints=False)
        assert gdm_ck.dynamic_state() == gdm_lin.dynamic_state()
        assert applied <= every  # tail never exceeds one interval


class TestMergeOrdering:
    class FakeResult:
        def __init__(self, index, job_id, trace_path):
            self.index = index
            self.job_id = job_id
            self.trace_path = trace_path

    @SETTINGS
    @given(sizes=st.lists(st.integers(0, 12), min_size=1, max_size=6),
           shuffled=st.permutations(range(6)))
    def test_merge_is_execution_order_invariant(self, tmp_path, sizes,
                                                shuffled):
        base = tempfile.mkdtemp(dir=tmp_path)
        results = []
        for index, size in enumerate(sizes):
            root = os.path.join(base, f"job-{index:05d}")
            store = TraceStore(root)
            for i in range(size):
                store.append({"t_target": i, "value": index * 1000 + i})
            store.close()
            results.append(self.FakeResult(index, f"job{index}", root))

        canonical = merge_job_stores(results, os.path.join(base, "a"))
        reordered = [results[i] for i in shuffled if i < len(results)]
        missing = [r for r in results if r not in reordered]
        permuted = merge_job_stores(reordered + missing,
                                    os.path.join(base, "b"))
        a = list(canonical.events())
        b = list(permuted.events())
        assert a == b
        assert [r["job_index"] for r in a] == sorted(
            r["job_index"] for r in a)
        assert len(a) == sum(sizes)
        # per-job seq preserved for provenance
        for record in a:
            assert record["value"] == (record["job_index"] * 1000
                                       + record["job_seq"])
