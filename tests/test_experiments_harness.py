"""Tests for the experiment harness, workloads and requirement suites."""

import os

import pytest

from repro.comdes.validate import validate_system
from repro.experiments.harness import ResultTable, artifacts_dir, save_artifact
from repro.experiments.requirements import (
    cruise_code_watches,
    cruise_monitor_suite,
    production_cell_code_watches,
    production_cell_monitor_suite,
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.experiments.workloads import (
    chain_machine, chain_system, scaled_dataflow_system, scaled_model,
)


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("demo", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("a-much-longer-name", 123456)
        lines = table.render().splitlines()
        assert lines[0] == "== demo =="
        assert lines[1].index("value") == lines[3].index("1") or True
        assert all(len(line) >= 5 for line in lines[1:])

    def test_formatting_rules(self):
        table = ResultTable("t", ["a"])
        table.add_row(None)
        table.add_row(True)
        table.add_row(3.14159)
        cells = [row[0] for row in table.rows]
        assert cells == ["-", "yes", "3.14"]

    def test_row_width_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_save_artifact_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        path = save_artifact("thing.txt", "content")
        assert os.path.dirname(path) == str(tmp_path)
        with open(path) as handle:
            assert handle.read() == "content"
        assert artifacts_dir() == str(tmp_path)


class TestWorkloads:
    def test_chain_machine_ring_structure(self):
        machine = chain_machine(5)
        assert len(machine.states) == 5
        trajectory = machine.run([{}] * 5)
        assert [s for s, _ in trajectory] == ["S1", "S2", "S3", "S4", "S0"]

    def test_chain_machine_dwell(self):
        machine = chain_machine(3, dwell=2)
        states = [s for s, _ in machine.run([{}] * 6)]
        assert states == ["S0", "S1", "S1", "S2", "S2", "S0"]

    def test_chain_machine_pos_output_tracks_state(self):
        machine = chain_machine(4)
        trajectory = machine.run([{}] * 4)
        assert [env["pos"] for _, env in trajectory] == [1, 2, 3, 0]

    def test_chain_minimum_size(self):
        with pytest.raises(ValueError):
            chain_machine(1)

    def test_chain_system_validates(self):
        validate_system(chain_system(6))

    def test_scaled_dataflow_system_validates_and_runs(self):
        system = scaled_dataflow_system(12)
        validate_system(system)
        history = system.lockstep_run(3)
        assert all("y" in row for row in history)

    def test_scaled_dataflow_minimum(self):
        with pytest.raises(ValueError):
            scaled_dataflow_system(2)

    def test_scaled_model_size_scales(self):
        small = scaled_model(5)
        large = scaled_model(50)
        assert len(large) > len(small)


class TestRequirementSuites:
    @pytest.mark.parametrize("factory", [
        traffic_light_monitor_suite,
        cruise_monitor_suite,
        production_cell_monitor_suite,
    ])
    def test_suites_construct_fresh_monitors(self, factory):
        first = factory()
        second = factory()
        assert first.monitors is not second.monitors
        assert len(first.monitors) == len(second.monitors) > 0
        assert not first.any_violation

    @pytest.mark.parametrize("factory", [
        traffic_light_code_watches,
        cruise_code_watches,
        production_cell_code_watches,
    ])
    def test_code_watch_specs_shape(self, factory):
        specs = factory()
        assert specs
        for symbol, predicate, description in specs:
            assert isinstance(symbol, str) and description
            assert predicate is None or callable(predicate)
