"""Tests for state machine models and their reference interpreter."""

import pytest

from repro.comdes.examples import blinker_machine, traffic_light_machine
from repro.comdes.expr import const, ge, gt, var
from repro.comdes.fsm import Assign, StateMachine, Transition
from repro.errors import ModelError, ValidationError


class TestWellFormedness:
    def test_initial_must_exist(self):
        with pytest.raises(ValidationError):
            StateMachine("m", states=["A"], initial="B", transitions=[])

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValidationError):
            StateMachine("m", states=["A", "A"], initial="A", transitions=[])

    def test_transition_endpoints_must_exist(self):
        with pytest.raises(ValidationError):
            StateMachine("m", states=["A"], initial="A",
                         transitions=[Transition("A", "Z")])

    def test_guard_variables_must_be_declared(self):
        with pytest.raises(ValidationError):
            StateMachine("m", states=["A"], initial="A",
                         transitions=[Transition("A", "A", guard=gt(var("ghost"), 0))])

    def test_action_targets_must_be_writable(self):
        with pytest.raises(ValidationError):
            StateMachine(
                "m", states=["A"], initial="A", inputs=["u"],
                transitions=[Transition("A", "A", actions=[Assign("u", const(1))])],
            )

    def test_valid_machine_constructs(self):
        machine = blinker_machine()
        assert machine.initial == "OFF"
        assert len(machine.transitions) == 4


class TestSemantics:
    def test_first_enabled_transition_wins(self):
        machine = StateMachine(
            "m", states=["A", "B", "C"], initial="A", inputs=["x"],
            transitions=[
                Transition("A", "B", guard=gt(var("x"), 0)),
                Transition("A", "C"),  # always enabled, but lower priority
            ],
        )
        state, _ = machine.step("A", machine.initial_env(), {"x": 1})
        assert state == "B"
        state, _ = machine.step("A", machine.initial_env(), {"x": 0})
        assert state == "C"

    def test_no_enabled_transition_stays_put(self):
        machine = StateMachine(
            "m", states=["A", "B"], initial="A", inputs=["x"],
            transitions=[Transition("A", "B", guard=gt(var("x"), 0))],
        )
        state, env = machine.step("A", machine.initial_env(), {"x": 0})
        assert state == "A"

    def test_actions_update_env(self):
        machine = blinker_machine(half_period_steps=2)
        env = machine.initial_env()
        state, env = machine.step("OFF", env, {})
        assert (state, env["t"]) == ("OFF", 1)
        state, env = machine.step(state, env, {})
        assert (state, env["led"], env["t"]) == ("ON", 1, 0)

    def test_missing_input_raises(self):
        machine = traffic_light_machine()
        with pytest.raises(ModelError):
            machine.step("RED", machine.initial_env(), {})

    def test_unknown_state_raises(self):
        machine = blinker_machine()
        with pytest.raises(ModelError):
            machine.step("LIMBO", machine.initial_env(), {})

    def test_run_produces_trajectory(self):
        machine = blinker_machine(half_period_steps=1)
        trajectory = machine.run([{}] * 4)
        assert [s for s, _ in trajectory] == ["ON", "OFF", "ON", "OFF"]

    def test_traffic_light_cycles(self):
        machine = traffic_light_machine(red_steps=2, green_steps=2, yellow_steps=1)
        trajectory = machine.run([{"btn": 0}] * 8)
        states = [s for s, _ in trajectory]
        assert states == ["RED", "GREEN", "GREEN", "YELLOW",
                          "RED", "RED", "GREEN", "GREEN"]

    def test_pedestrian_button_shortens_green(self):
        machine = traffic_light_machine(red_steps=2, green_steps=10, yellow_steps=1)
        # Reach GREEN after 2 steps, press the button immediately.
        trajectory = machine.run([{"btn": 0}, {"btn": 0}, {"btn": 1}])
        assert trajectory[-1][0] == "YELLOW"

    def test_variables_persist_between_steps(self):
        machine = blinker_machine(half_period_steps=3)
        env = machine.initial_env()
        state = machine.initial
        for _ in range(2):
            state, env = machine.step(state, env, {})
        assert env["t"] == 2


class TestGraphQueries:
    def test_transitions_from_preserves_order(self):
        machine = traffic_light_machine()
        sources = [t.target for t in machine.transitions_from("GREEN")]
        assert sources == ["YELLOW", "YELLOW", "GREEN"]

    def test_reachable_states_full_graph(self):
        machine = traffic_light_machine()
        assert set(machine.reachable_states()) == {"RED", "GREEN", "YELLOW"}

    def test_unreachable_state_detected(self):
        machine = StateMachine(
            "m", states=["A", "B", "ISLAND"], initial="A",
            transitions=[Transition("A", "B"), Transition("B", "A")],
        )
        assert "ISLAND" not in machine.reachable_states()
