"""Differential tests for deeply nested hierarchy in generated code.

Modal blocks containing composites containing state machines exercise the
trickiest codegen paths: scoped symbol naming, per-mode state freezing, and
recursive phase ordering. Reference interpreter and firmware must agree.
"""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import (
    AddFB, ConstantFB, DelayFB, GainFB, SequenceFB, StateMachineFB,
)
from repro.comdes.composite import CompositeFB
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.examples import blinker_machine
from repro.comdes.modal import ModalFB, Mode
from repro.comdes.signals import Signal
from repro.comdes.system import System


def counter_composite(name: str) -> CompositeFB:
    """A composite wrapping a feedback counter (delay-broken cycle)."""
    network = ComponentNetwork(
        name=f"{name}_net",
        blocks=[DelayFB("z"), AddFB("inc"), ConstantFB("one", 1)],
        connections=[
            Connection.wire("z.y", "inc.a"),
            Connection.wire("one.y", "inc.b"),
            Connection.wire("inc.y", "z.u"),
        ],
        input_ports={"u": []},  # ignored input, for modal signature parity
        output_ports={"y": PortRef("inc", "y")},
    )
    return CompositeFB(name, network)


def sm_in_network() -> ComponentNetwork:
    """A network with an FSM whose output is post-processed."""
    return ComponentNetwork(
        name="smnet",
        blocks=[StateMachineFB("blink", blinker_machine(2)),
                GainFB("amp", num=10)],
        connections=[Connection.wire("blink.led", "amp.u")],
        input_ports={"u": []},
        output_ports={"y": PortRef("amp", "y")},
    )


def nested_system() -> System:
    """Modal block: mode A = composite counter, mode B = FSM network."""
    modal = ModalFB("deep", modes=[
        Mode("COUNT", ComponentNetwork(
            "count_wrap",
            blocks=[counter_composite("cnt")],
            input_ports={"u": [PortRef("cnt", "u")]},
            output_ports={"y": PortRef("cnt", "y")},
        )),
        Mode("BLINK", sm_in_network()),
    ])
    network = ComponentNetwork(
        name="top",
        blocks=[
            SequenceFB("selector", values=[0, 0, 0, 1, 1, 1, 1, 0],
                       repeat=True),
            SequenceFB("feed", values=[5]),
            modal,
        ],
        connections=[
            Connection.wire("selector.y", "deep.mode"),
            Connection.wire("feed.y", "deep.u"),
        ],
        output_ports={"out": PortRef("deep", "y")},
    )
    actor = Actor("nester", network, TaskSpec(period_us=1000),
                  outputs={"out": "out"})
    return System("nested", signals=[Signal("out")], actors=[actor])


class TestDeepNesting:
    def test_interpreter_behaviour_is_sane(self):
        history = nested_system().lockstep_run(16)
        values = [row["out"] for row in history]
        # Rounds 0-2: counter counts 1,2,3; rounds 3-6: blinker FSM amplified
        # (0 or 10); round 7 back to counting from 4 (state frozen).
        assert values[0:3] == [1, 2, 3]
        assert set(values[3:7]) <= {0, 10}
        assert values[7] == 4

    def test_firmware_matches_interpreter_uninstrumented(self):
        system = nested_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        assert (run_firmware_lockstep(system, firmware, 40)
                == system.lockstep_run(40))

    def test_firmware_matches_interpreter_instrumented(self):
        system = nested_system()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        assert (run_firmware_lockstep(system, firmware, 40)
                == system.lockstep_run(40))

    def test_nested_symbols_are_scoped(self):
        firmware = generate_firmware(nested_system(),
                                     InstrumentationPlan.none())
        names = [s.name for s in firmware.symbols.symbols()]
        # Composite inside modal mode: full scope chain in the symbol name.
        assert any("deep.COUNT.cnt" in n for n in names)
        assert any("deep.BLINK.blink.$_state" in n for n in names)

    def test_state_paths_match_reflect_convention(self):
        from repro.comdes.reflect import system_to_model
        system = nested_system()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        model_paths = {obj.get("path")
                       for obj in system_to_model(system).all_objects()}
        for path in firmware.path_table.values():
            if path.startswith(("state:", "trans:")):
                assert path in model_paths, path
