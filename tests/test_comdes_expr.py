"""Tests for the guard/action expression AST."""

import pytest

from repro.comdes.expr import (
    Binary, Const, Unary, Var,
    band, bor, const, eq, ge, gt, le, lnot, lt, maximum, minimum, ne, var,
)
from repro.errors import ModelError
from repro.util.intmath import INT_MAX, INT_MIN


class TestEvaluation:
    def test_const(self):
        assert const(5).eval({}) == 5

    def test_const_wraps_to_32_bits(self):
        assert const(INT_MAX + 1).eval({}) == INT_MIN

    def test_var_reads_env(self):
        assert var("x").eval({"x": 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(ModelError):
            var("x").eval({})

    def test_arithmetic_sugar(self):
        e = (var("a") + const(3)) * var("b") - const(1)
        assert e.eval({"a": 2, "b": 4}) == 19

    def test_int_literal_coerced_in_sugar(self):
        assert (var("a") + 3).eval({"a": 1}) == 4

    def test_division_truncates_toward_zero(self):
        assert (const(-7) // const(2)).eval({}) == -3

    def test_mod_sign_follows_dividend(self):
        assert (const(-7) % const(2)).eval({}) == -1

    def test_negation(self):
        assert (-var("x")).eval({"x": 5}) == -5

    def test_addition_wraps(self):
        assert (const(INT_MAX) + const(1)).eval({}) == INT_MIN

    def test_comparisons_return_0_or_1(self):
        env = {"a": 3, "b": 5}
        assert eq(var("a"), 3).eval(env) == 1
        assert ne(var("a"), 3).eval(env) == 0
        assert lt(var("a"), var("b")).eval(env) == 1
        assert le(3, 3).eval({}) == 1
        assert gt(var("b"), var("a")).eval(env) == 1
        assert ge(2, 3).eval({}) == 0

    def test_logic_operators(self):
        assert band(1, 1).eval({}) == 1
        assert band(1, 0).eval({}) == 0
        assert bor(0, 0).eval({}) == 0
        assert bor(0, 5).eval({}) == 1   # any non-zero is true
        assert lnot(0).eval({}) == 1
        assert lnot(3).eval({}) == 0

    def test_min_max(self):
        assert minimum(3, 5).eval({}) == 3
        assert maximum(3, 5).eval({}) == 5
        assert minimum(-2, -7).eval({}) == -7


class TestStructure:
    def test_free_vars_in_first_use_order(self):
        e = var("b") + var("a") + var("b")
        assert e.free_vars() == ("b", "a")

    def test_const_has_no_free_vars(self):
        assert const(1).free_vars() == ()

    def test_walk_visits_all_nodes(self):
        e = (var("a") + 1) * var("b")
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds.count("Binary") == 2
        assert kinds.count("Var") == 2
        assert kinds.count("Const") == 1

    def test_unknown_operator_rejected(self):
        with pytest.raises(ModelError):
            Binary("xor", const(1), const(2))
        with pytest.raises(ModelError):
            Unary("abs", const(1))

    def test_bad_operand_rejected(self):
        with pytest.raises(ModelError):
            var("a") + "three"

    def test_repr_is_readable(self):
        assert repr(lt(var("t"), 3)) == "(t lt 3)"
