"""Tests for the extended function-block library (abs/ema/counter/edge),
including differential tests against generated code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import AbsFB, CounterFB, EdgeDetectFB, EmaFB, SequenceFB
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.errors import ModelError
from repro.util.intmath import INT_MIN


def run_block(block, input_trace):
    state = block.state_vars()
    outputs = []
    for inputs in input_trace:
        out, state = block.behavior(inputs, state)
        outputs.append(out["y"])
    return outputs


class TestAbs:
    def test_basic(self):
        assert run_block(AbsFB("a"), [{"u": -5}, {"u": 5}, {"u": 0}]) == [5, 5, 0]

    def test_int_min_wraps_to_itself(self):
        assert run_block(AbsFB("a"), [{"u": INT_MIN}]) == [INT_MIN]


class TestEma:
    def test_converges_toward_input(self):
        values = run_block(EmaFB("f", num=1, den=2), [{"u": 100}] * 6)
        assert values == [50, 75, 87, 93, 96, 98]

    def test_init_value(self):
        values = run_block(EmaFB("f", num=1, den=4, init=80), [{"u": 80}] * 3)
        assert values == [80, 80, 80]

    def test_zero_denominator_rejected(self):
        with pytest.raises(ModelError):
            EmaFB("f", num=1, den=0)


class TestCounter:
    def trace(self, incs, rsts=None, modulus=0):
        rsts = rsts or [0] * len(incs)
        block = CounterFB("c", modulus=modulus)
        return run_block(block, [{"inc": i, "rst": r}
                                 for i, r in zip(incs, rsts)])

    def test_counts_rising_edges_only(self):
        assert self.trace([1, 1, 0, 1, 1, 0]) == [1, 1, 1, 2, 2, 2]

    def test_reset_wins(self):
        assert self.trace([1, 0, 1, 1], rsts=[0, 0, 0, 1]) == [1, 1, 2, 0]

    def test_modulus_wraps(self):
        assert self.trace([1, 0, 1, 0, 1, 0], modulus=2) == [1, 1, 0, 0, 1, 1]

    def test_negative_modulus_rejected(self):
        with pytest.raises(ModelError):
            CounterFB("c", modulus=-1)


class TestEdgeDetect:
    def test_pulses_on_rising_edge(self):
        block = EdgeDetectFB("e")
        assert run_block(block, [{"u": v} for v in (0, 1, 1, 0, 5, 0)]) == \
            [0, 1, 0, 0, 1, 0]

    def test_initial_high_counts_as_edge(self):
        assert run_block(EdgeDetectFB("e"), [{"u": 1}]) == [1]


def _pipeline_system(stimulus):
    """Stimulus -> edge -> counter, plus ema and abs taps on the stimulus."""
    network = ComponentNetwork(
        name="dsp",
        blocks=[
            SequenceFB("stim", values=stimulus, repeat=True),
            EdgeDetectFB("edge"),
            CounterFB("events", modulus=5),
            SequenceFB("zero", values=[0]),
            EmaFB("filt", num=1, den=2),
            AbsFB("mag"),
        ],
        connections=[
            Connection.wire("stim.y", "edge.u"),
            Connection.wire("edge.y", "events.inc"),
            Connection.wire("zero.y", "events.rst"),
            Connection.wire("stim.y", "filt.u"),
            Connection.wire("stim.y", "mag.u"),
        ],
        output_ports={
            "count": PortRef("events", "y"),
            "avg": PortRef("filt", "y"),
            "mag": PortRef("mag", "y"),
        },
    )
    actor = Actor("dsp", network, TaskSpec(period_us=1000),
                  outputs={"count": "count", "avg": "avg", "mag": "mag"})
    return System("dsp_sys", signals=[Signal("count"), Signal("avg"),
                                      Signal("mag")], actors=[actor])


class TestNewBlocksCompile:
    def test_firmware_matches_interpreter(self):
        system = _pipeline_system([0, 3, -7, 0, 0, 12, 12, 0])
        firmware = generate_firmware(system, InstrumentationPlan.none())
        assert (run_firmware_lockstep(system, firmware, 50)
                == system.lockstep_run(50))

    @given(stimulus=st.lists(st.integers(-1000, 1000), min_size=2,
                             max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_firmware_matches_on_random_stimuli(self, stimulus):
        system = _pipeline_system(stimulus)
        firmware = generate_firmware(system, InstrumentationPlan.none())
        assert (run_firmware_lockstep(system, firmware, 30)
                == system.lockstep_run(30))
