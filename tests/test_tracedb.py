"""Unit tests for repro.tracedb: formats, segments, index, store,
checkpoints, spill wiring into ExecutionTrace / DtmKernel, and the
ring-truncation replay guard."""

import json
import os
import warnings

import pytest

from repro.codegen import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.examples import traffic_light_system
from repro.comm.protocol import Command, CommandKind
from repro.engine.replay import ReplayPlayer
from repro.engine.trace import ExecutionTrace
from repro.errors import TraceStoreError, TruncatedTraceError
from repro.gdm.model import GdmModel
from repro.rtos.kernel import DtmKernel
from repro.tracedb import (
    CODECS,
    StoredTrace,
    TraceStore,
    read_segment,
)
from repro.tracedb.format import encode_record, read_header, write_header
from repro.tracedb.index import CheckpointInfo, StoreIndex
from repro.tracedb.segment import SegmentInfo
from repro.util.timeunits import ms


def cmd(i: int) -> Command:
    return Command(CommandKind.SIG_UPDATE, f"signal:s{i % 3}", i,
                   t_target=i * 10, t_host=i * 10 + 1)


def fill(trace: ExecutionTrace, n: int) -> None:
    for i in range(n):
        trace.record(cmd(i), [], "REACTING")


def make_store(tmp_path, n: int = 0, **kw) -> TraceStore:
    store = TraceStore(str(tmp_path / "store"), **kw)
    for i in range(n):
        store.append({"seq": i, "t_target": i * 10, "kind": "SIG_UPDATE",
                      "path": f"signal:s{i % 3}", "value": i})
    return store


class TestFormat:
    def test_encoding_is_canonical(self):
        a = encode_record({"b": 1, "a": [2, {"z": 3, "y": 4}]})
        b = encode_record({"a": [2, {"y": 4, "z": 3}], "b": 1})
        assert a == b
        assert b" " not in a

    @pytest.mark.parametrize("codec", sorted(CODECS))
    def test_header_roundtrip(self, tmp_path, codec):
        path = tmp_path / "seg.trc"
        with open(path, "wb") as fh:
            write_header(fh, codec)
        with open(path, "rb") as fh:
            assert read_header(fh) is CODECS[codec]

    def test_header_is_readable_json_line(self, tmp_path):
        path = tmp_path / "seg.trc"
        with open(path, "wb") as fh:
            write_header(fh, "binary")
        first_line = open(path, "rb").readline()
        header = json.loads(first_line)
        assert header["codec"] == "binary" and header["version"] == 1

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "seg.trc"
        path.write_bytes(b'{"magic": "something-else"}\n')
        with open(path, "rb") as fh:
            with pytest.raises(TraceStoreError):
                read_header(fh)

    def test_unknown_codec_rejected(self, tmp_path):
        with open(tmp_path / "seg.trc", "wb") as fh:
            with pytest.raises(TraceStoreError):
                write_header(fh, "carrier-pigeon")

    def test_truncated_binary_record_is_loud(self, tmp_path):
        path = tmp_path / "seg.trc"
        with open(path, "wb") as fh:
            write_header(fh, "binary")
            CODECS["binary"].write(fh, {"seq": 0})
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # chop the payload tail
        with pytest.raises(TraceStoreError):
            list(read_segment(str(path)))


class TestStoreAppendAndQuery:
    @pytest.mark.parametrize("codec", sorted(CODECS))
    def test_roundtrip_both_codecs(self, tmp_path, codec):
        store = make_store(tmp_path, 50, segment_events=16, codec=codec)
        store.close()
        back = TraceStore.open(str(tmp_path / "store"))
        records = list(back.events())
        assert [r["seq"] for r in records] == list(range(50))
        assert records[17]["value"] == 17

    def test_rotation_seals_segments(self, tmp_path):
        store = make_store(tmp_path, 40, segment_events=16)
        names = [s.name for s in store._index.segments]
        assert names == ["seg-000000000000.trc", "seg-000000000016.trc"]
        store.close()
        assert len(TraceStore.open(store.root)._index.segments) == 3

    def test_live_reads_see_unsealed_tail(self, tmp_path):
        store = make_store(tmp_path, 10, segment_events=64)
        assert [r["seq"] for r in store.events()] == list(range(10))
        assert store.event_count == 10

    def test_seq_stamped_when_absent(self, tmp_path):
        store = make_store(tmp_path)
        assert store.append({"t_target": 0}) == 0
        assert store.append({"t_target": 5}) == 1

    def test_out_of_order_append_rejected(self, tmp_path):
        store = make_store(tmp_path, 3)
        with pytest.raises(TraceStoreError):
            store.append({"seq": 7, "t_target": 0})

    def test_append_after_close_rejected(self, tmp_path):
        store = make_store(tmp_path, 3)
        store.close()
        with pytest.raises(TraceStoreError):
            store.append({"t_target": 0})

    def test_reopen_resumes_seq(self, tmp_path):
        make_store(tmp_path, 20, segment_events=8).close()
        again = TraceStore(str(tmp_path / "store"))
        assert again.next_seq == 20
        again.append({"t_target": 999})
        again.close()
        assert [r["seq"] for r in TraceStore.open(again.root).events()] \
            == list(range(21))

    def test_seq_range_query_is_inclusive_and_pruned(self, tmp_path):
        store = make_store(tmp_path, 100, segment_events=10)
        got = [r["seq"] for r in store.events(seq_range=(25, 34))]
        assert got == list(range(25, 35))

    def test_time_range_query(self, tmp_path):
        store = make_store(tmp_path, 100, segment_events=10)
        got = [r["t_target"] for r in store.events_between(200, 290)]
        assert got == [t * 10 for t in range(20, 30)]

    def test_by_kind_and_by_element(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"kind": "SIG_UPDATE", "t_target": 0,
                      "reactions": [{"element": "el1", "path": "signal:x"}]})
        store.append({"kind": "STATE_ENTER", "t_target": 5,
                      "reactions": [{"element": "el2", "path": "state:a"}]})
        assert len(list(store.by_kind(CommandKind.STATE_ENTER))) == 1
        assert len(list(store.by_kind("SIG_UPDATE"))) == 1
        assert [r["seq"] for r in store.by_element("el2")] == [1]
        assert [r["seq"] for r in store.by_element("signal:x")] == [0]

    def test_open_missing_store_is_loud(self, tmp_path):
        with pytest.raises(TraceStoreError):
            TraceStore.open(str(tmp_path / "nothing"))

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(TraceStoreError):
            TraceStore(str(tmp_path / "a"), segment_events=0)
        with pytest.raises(TraceStoreError):
            TraceStore(str(tmp_path / "b"), checkpoint_every=0)
        with pytest.raises(TraceStoreError):
            TraceStore(str(tmp_path / "c"), codec="morse")


class TestIndex:
    def seg(self, first, count):
        return SegmentInfo(f"seg-{first:012d}.trc", first, first + count - 1,
                           first * 10, (first + count - 1) * 10, count, 100)

    def test_gap_rejected(self):
        index = StoreIndex("jsonl", 16)
        index.add_segment(self.seg(0, 16))
        with pytest.raises(TraceStoreError):
            index.add_segment(self.seg(20, 16))

    def test_duplicate_checkpoint_rejected(self):
        index = StoreIndex("jsonl", 16)
        index.add_segment(self.seg(0, 16))
        index.add_checkpoint(CheckpointInfo(7, 70, "ckpt/a.json"))
        with pytest.raises(TraceStoreError):
            index.add_checkpoint(CheckpointInfo(7, 70, "ckpt/b.json"))

    def test_out_of_order_checkpoint_insertion_keeps_rows_sorted(self):
        # an offline build_checkpoints pass may fill gaps below
        # live-recorded checkpoints
        index = StoreIndex("jsonl", 16)
        index.add_checkpoint(CheckpointInfo(19, 190, "c19"))
        index.add_checkpoint(CheckpointInfo(9, 90, "c9"))
        index.add_checkpoint(CheckpointInfo(14, 140, "c14"))
        assert [c.seq for c in index.checkpoints] == [9, 14, 19]
        assert index.nearest_checkpoint(15).seq == 14

    def test_nearest_checkpoint_bisects(self):
        index = StoreIndex("jsonl", 16)
        for seq in (9, 19, 29):
            index.add_checkpoint(CheckpointInfo(seq, seq, f"c{seq}"))
        assert index.nearest_checkpoint(8) is None
        assert index.nearest_checkpoint(9).seq == 9
        assert index.nearest_checkpoint(28).seq == 19
        assert index.nearest_checkpoint(500).seq == 29

    def test_segment_intersection_predicates(self):
        info = self.seg(16, 16)  # seqs 16..31, t_target 160..310
        assert info.intersects_seq(31, 40) and info.intersects_seq(0, 16)
        assert not info.intersects_seq(0, 15)
        assert not info.intersects_seq(32, 99)
        assert info.intersects_time(0, 160) and info.intersects_time(310, 999)
        assert not info.intersects_time(0, 159)
        empty = SegmentInfo("e", 5, 4, 0, 0, 0, 30)
        assert not empty.intersects_seq(0, 99)
        assert not empty.intersects_time(0, 99)

    def test_time_extent_is_min_max_not_first_last(self, tmp_path):
        # non-monotonic t_target (merged campaign stores, out-of-order
        # job completions) must not break index pruning
        store = TraceStore(str(tmp_path / "s"), segment_events=10)
        for t in (800, 900, 1000, 0, 100, 200):
            store.append({"t_target": t})
        store.close()
        back = TraceStore.open(store.root)
        assert [r["t_target"] for r in back.events_between(850, 950)] == [900]
        info = back._index.segments[0]
        assert (info.first_t_target, info.last_t_target) == (0, 1000)


class TestStoredTrace:
    def test_len_index_iterate_match(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=8)
        ref = ExecutionTrace()
        fill(ref, 30)
        for event in ref:
            store.append(event.to_dict())
        view = StoredTrace(store)
        assert len(view) == 30
        assert view.dropped == 0
        assert [e.seq for e in view] == list(range(30))
        assert view[13].to_dict() == ref[13].to_dict()
        assert view[-1].seq == 29
        with pytest.raises(IndexError):
            view[30]

    def test_segment_cache_stays_bounded(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=4)
        ref = ExecutionTrace()
        fill(ref, 40)
        for event in ref:
            store.append(event.to_dict())
        view = StoredTrace(store)
        for i in range(40):
            assert view[i].seq == i
        assert len(view._cache) <= StoredTrace._CACHE_SEGMENTS


class TestExecutionTraceSpill:
    def test_spill_keeps_dropped_zero_and_full_history(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=32)
        ring = ExecutionTrace(capacity=8, spill=store)
        ref = ExecutionTrace()
        fill(ring, 200)
        fill(ref, 200)
        assert ring.dropped == 0
        assert len(ring) == 8  # hot cache holds the newest 8
        assert [e.seq for e in ring] == list(range(192, 200))
        full = ring.full_history()
        assert len(full) == 200
        assert [e.to_dict() for e in full] == ref.to_dicts()

    def test_full_history_without_spill_is_self(self):
        trace = ExecutionTrace()
        fill(trace, 5)
        assert trace.full_history() is trace

    def test_unbounded_trace_can_spill_too(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"))
        trace = ExecutionTrace(spill=store)
        fill(trace, 10)
        assert len(trace) == 10
        assert len(trace.full_history()) == 10


class TestKernelRecordSpill:
    def run_kernel(self, tmp_path, capacity, spill):
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        store = (TraceStore(str(tmp_path / "jobs"), segment_events=16)
                 if spill else None)
        kernel = DtmKernel(system, firmware, record_capacity=capacity,
                           record_spill=store)
        kernel.run(ms(3000))
        return kernel

    def test_spilled_history_superset_of_ring(self, tmp_path):
        kernel = self.run_kernel(tmp_path, capacity=8, spill=True)
        assert kernel.records_dropped == 0
        full = list(kernel.spilled_records())
        ring = kernel.records
        assert len(full) > len(ring) == 8
        tail = full[-8:]
        assert [(r.actor, r.index, r.release, r.completion) for r in tail] \
            == [(r.actor, r.index, r.release, r.completion) for r in ring]

    def test_spilled_equals_unbounded_run(self, tmp_path):
        spilled = self.run_kernel(tmp_path, capacity=8, spill=True)
        reference = self.run_kernel(tmp_path / "ref", capacity=None,
                                    spill=False)
        key = lambda r: (r.actor, r.index, r.release, r.completion,
                         r.deadline_abs, r.demand_us, r.skipped, r.missed)
        assert [key(r) for r in spilled.spilled_records()] \
            == [key(r) for r in reference.records]

    def test_spilled_records_without_store_is_loud(self, tmp_path):
        kernel = self.run_kernel(tmp_path, capacity=4, spill=False)
        with pytest.raises(Exception):
            list(kernel.spilled_records())


class TestTruncatedReplayGuard:
    def truncated(self):
        trace = ExecutionTrace(capacity=4)
        fill(trace, 12)
        return trace

    def test_replaying_truncated_ring_raises_with_count(self):
        trace = self.truncated()
        with pytest.raises(TruncatedTraceError) as err:
            ReplayPlayer(trace, GdmModel("m")).start()
        assert err.value.dropped == 8
        assert err.value.surviving == 4
        assert "8" in str(err.value)

    def test_allow_truncated_warns_and_replays_window(self):
        trace = self.truncated()
        player = ReplayPlayer(trace, GdmModel("m"), allow_truncated=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            player.start()
        assert any("truncated trace window" in str(w.message) for w in caught)
        assert player.run_to_end() == 4

    def test_spilling_ring_full_history_replays_without_guard(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"))
        trace = ExecutionTrace(capacity=4, spill=store)
        fill(trace, 12)
        player = ReplayPlayer(trace.full_history(), GdmModel("m"))
        player.start()  # full history starts at seq 0: no guard trips
        assert player.run_to_end() == 12

    def test_spilling_ring_replayed_directly_is_also_guarded(self, tmp_path):
        # dropped == 0 but the window starts mid-history: the guard must
        # point the caller at full_history() instead of silently
        # replaying the cached tail
        store = TraceStore(str(tmp_path / "s"))
        trace = ExecutionTrace(capacity=4, spill=store)
        fill(trace, 20)
        with pytest.raises(TruncatedTraceError) as err:
            ReplayPlayer(trace, GdmModel("m")).start()
        assert err.value.missing == 16
        assert err.value.spilled
        assert "full_history" in str(err.value)

    def test_untruncated_ring_replays_cleanly(self):
        trace = ExecutionTrace(capacity=50)
        fill(trace, 12)
        player = ReplayPlayer(trace, GdmModel("m"))
        player.start()
        assert player.run_to_end() == 12


class TestReviewRegressions:
    def test_offline_build_fills_gaps_below_live_checkpoints(self, tmp_path):
        # a store live-checkpointed at a coarse interval can later be
        # densified by build_checkpoints at a finer one
        store = TraceStore(str(tmp_path / "s"), segment_events=32)
        trace = ExecutionTrace(spill=store)
        fill(trace, 100)
        store.add_checkpoint(99, 991, {"elements": {}, "links": {}})
        from repro.tracedb import build_checkpoints
        built = build_checkpoints(store, GdmModel("m"), every=25)
        assert built == 3  # 24, 49, 74 inserted below the existing 99
        assert [c.seq for c in store.checkpoints()] == [24, 49, 74, 99]

    def test_job_store_reopen_replaces_stale_attempt(self, tmp_path):
        # the pool's crash retry re-runs a job whose first attempt may
        # have sealed segments: the retry must start clean, not collide
        from repro.tracedb import open_job_store
        store = open_job_store(str(tmp_path), 3, segment_events=2)
        for i in range(5):
            store.append({"t_target": i})
        store.close()
        retry = open_job_store(str(tmp_path), 3, segment_events=2)
        assert retry.event_count == 0
        assert retry.append({"t_target": 0}) == 0
        retry.close()

    def test_reused_campaign_root_is_rejected_with_cause(self, tmp_path):
        from repro.tracedb import merge_job_stores, open_job_store

        class FakeResult:
            index, job_id = 0, "control"

            def __init__(self, path):
                self.trace_path = path

        job = open_job_store(str(tmp_path), 0)
        job.append({"t_target": 0})
        job.close()
        results = [FakeResult(job.root)]
        merge_job_stores(results, str(tmp_path / "campaign"))
        with pytest.raises(TraceStoreError) as err:
            merge_job_stores(results, str(tmp_path / "campaign"))
        assert "reused" in str(err.value)

    def test_reads_never_write_the_index(self, tmp_path):
        # queries on a store opened from elsewhere must not rewrite
        # index.json (read-only mounts stay queryable)
        store = make_store(tmp_path, 30, segment_events=8)
        store.close()
        reader = TraceStore.open(store.root)
        index_path = os.path.join(store.root, "index.json")
        before = os.stat(index_path).st_mtime_ns
        list(reader.events())
        list(reader.events_between(0, 10**9))
        list(reader.events(seq_range=(10, 20)))
        assert os.stat(index_path).st_mtime_ns == before

    def test_reused_trace_dir_fails_before_any_job_runs(self, tmp_path):
        from repro.tracedb import ensure_fresh_trace_dir, merge_job_stores

        class FakeResult:
            index, job_id = 0, "control"

            def __init__(self, path):
                self.trace_path = path

        trace_dir = str(tmp_path)
        ensure_fresh_trace_dir(trace_dir)  # fresh: fine
        job = make_store(tmp_path, 1)
        job.close()
        merge_job_stores([FakeResult(job.root)],
                         str(tmp_path / "campaign"))
        with pytest.raises(TraceStoreError) as err:
            ensure_fresh_trace_dir(trace_dir)
        assert "fresh trace_dir" in str(err.value)

    def test_checkpoint_interval_survives_reattach(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), checkpoint_every=64)
        store.append({"t_target": 0})
        store.close()
        resumed = TraceStore.open(str(tmp_path / "s"))
        assert resumed.checkpoint_every == 64
        assert resumed.wants_checkpoint(63)
        overridden = TraceStore(str(tmp_path / "s"), checkpoint_every=32)
        assert overridden.checkpoint_every == 32

    def test_attach_recovers_flushed_but_unclosed_records(self, tmp_path):
        # a recorder that flushed and then died must not lose its active
        # segment on reattach (previously the new writer zeroed the file)
        store = make_store(tmp_path, 500, segment_events=200)
        store.flush()  # 2 sealed segments + 100 flushed-but-unsealed
        del store  # simulate a crash: no close()
        revived = TraceStore(str(tmp_path / "store"))
        assert revived.event_count == 500
        assert [r["seq"] for r in revived.events(seq_range=(398, 402))] \
            == [398, 399, 400, 401, 402]
        revived.append({"t_target": 0})
        revived.close()
        assert TraceStore.open(revived.root).event_count == 501

    def test_attach_recovers_multiple_unindexed_segments(self, tmp_path):
        # a recorder that rotated several segments after the last index
        # publish must get ALL of them back, not just the first orphan
        store = make_store(tmp_path, 250, segment_events=100)
        store._flush_bytes()  # bytes durable, index.json still empty
        del store
        revived = TraceStore(str(tmp_path / "store"))
        assert revived.event_count == 250
        assert [r["seq"] for r in revived.events(seq_range=(95, 105))] \
            == list(range(95, 106))
        assert revived.append({"t_target": 0}) == 250

    def test_attach_refuses_unreachable_segments(self, tmp_path):
        # a gap in the chain means data we cannot order: refuse loudly
        # instead of silently overwriting the stranded file
        store = make_store(tmp_path, 250, segment_events=100)
        store._flush_bytes()
        del store
        os.unlink(str(tmp_path / "store" / "seg-000000000100.trc"))
        with pytest.raises(TraceStoreError) as err:
            TraceStore(str(tmp_path / "store"))
        assert "seg-000000000200.trc" in str(err.value)

    def test_attach_recovers_unindexed_checkpoints(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=8,
                           checkpoint_every=4)
        for i in range(10):
            store.append({"t_target": i})
            if store.wants_checkpoint(i):
                store.add_checkpoint(i, i, {"elements": {}, "links": {}})
        store._flush_bytes()  # bytes durable, index rows never published
        del store
        revived = TraceStore(str(tmp_path / "s"))
        assert [c.seq for c in revived.checkpoints()] == [3, 7]
        assert revived.nearest_checkpoint(9).seq == 7

    def test_attach_drops_torn_tail_record(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=100,
                           codec="binary")
        for i in range(10):
            store.append({"t_target": i})
        store.flush()
        seg = os.path.join(store.root, "seg-000000000000.trc")
        del store
        data = open(seg, "rb").read()
        with open(seg, "wb") as fh:
            fh.write(data[:-5])  # crash mid-append: torn last record
        revived = TraceStore(str(tmp_path / "s"))
        assert revived.event_count == 9  # intact prefix adopted
        assert revived.append({"t_target": 99}) == 9

    def test_zero_byte_orphan_segment_is_dropped_not_bricking(self, tmp_path):
        # SIGKILL before the first flush leaves the buffered header
        # unwritten: a 0-byte file provably holds nothing, so attach
        # must succeed instead of refusing forever
        store = make_store(tmp_path, 100, segment_events=100)
        store.close()
        open(str(tmp_path / "store" / "seg-000000000100.trc"), "wb").close()
        revived = TraceStore(str(tmp_path / "store"))
        assert revived.event_count == 100
        assert revived.append({"t_target": 0}) == 100

    def test_unmerged_run_leftovers_refuse_trace_dir_reuse(self, tmp_path):
        from repro.tracedb import ensure_fresh_trace_dir, open_job_store
        job = open_job_store(str(tmp_path), 7)
        job.append({"t_target": 0})
        job.close()  # a previous run died before its merge
        with pytest.raises(TraceStoreError) as err:
            ensure_fresh_trace_dir(str(tmp_path))
        assert "job-00007" in str(err.value)

    def test_corrupt_header_orphan_is_refused_not_deleted(self, tmp_path):
        store = make_store(tmp_path, 250, segment_events=100)
        store._flush_bytes()
        del store
        seg = str(tmp_path / "store" / "seg-000000000000.trc")
        data = open(seg, "rb").read()
        with open(seg, "wb") as fh:
            fh.write(b"garbage" + data[40:])  # torn header, intact tail
        with pytest.raises(TraceStoreError) as err:
            TraceStore(str(tmp_path / "store"))
        assert "unreadable header" in str(err.value)
        assert os.path.exists(seg)  # nothing was destroyed

    def test_failed_jobs_excluded_from_campaign_merge(self, tmp_path):
        from repro.tracedb import merge_job_stores, open_job_store

        class FakeResult:
            def __init__(self, index, path, failed):
                self.index = index
                self.job_id = f"j{index}"
                self.trace_path = path
                self.failed = failed

        results = []
        for index, failed in ((0, False), (1, True), (2, False)):
            job = open_job_store(str(tmp_path), index)
            job.append({"t_target": index})
            job.close()
            results.append(FakeResult(index, job.root, failed))
        campaign = merge_job_stores(results, str(tmp_path / "campaign"))
        # the failed job's partial trace stays out of the canonical
        # store (its trace_path remains for post-mortems)
        assert [r["job_index"] for r in campaign.events()] == [0, 2]

    def test_stale_ahead_of_history_checkpoint_file_is_deleted(self, tmp_path):
        # ckpt files are atomic but segment bytes are buffered: a crash
        # can leave a checkpoint whose event never became durable. It
        # must be deleted at recovery — kept on disk, a LATER recovery
        # (after new events reuse that seq) would adopt its stale payload
        store = TraceStore(str(tmp_path / "s"), segment_events=100)
        store.append({"t_target": 0})
        store.flush()
        store.add_checkpoint(0, 1, {"elements": {}, "links": {}})
        # simulate: checkpoint for seq 5 hit disk, events 1..5 did not
        from repro.tracedb.checkpoint import Checkpoint, save_checkpoint
        stale = os.path.join(store.root, "ckpt", "ckpt-000000000005.json")
        save_checkpoint(stale, Checkpoint(5, 50, {"elements": {"x": {}},
                                                  "links": {}}))
        del store
        revived = TraceStore(str(tmp_path / "s"))
        assert not os.path.exists(stale)
        assert [c.seq for c in revived.checkpoints()] == [0]
        # second crash/attach cycle after seq 5 exists must not resurrect it
        for i in range(1, 8):
            revived.append({"t_target": i})
        revived.close()
        assert [c.seq for c in TraceStore.open(revived.root).checkpoints()] \
            == [0]

    def test_state_only_replay_captures_no_frames(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"))
        trace = ExecutionTrace(spill=store)
        fill(trace, 50)
        from repro.tracedb import StoredTrace, build_checkpoints
        build_checkpoints(store, GdmModel("m"), every=10)
        player = ReplayPlayer(StoredTrace(store), GdmModel("m"),
                              capture_frames=False)
        player.start()
        assert player.run_to_end() == 50
        assert len(player.frames) == 0  # flat memory for state-only passes

    def test_deserialized_window_raises_without_spill_advice(self):
        # a saved+loaded ring window has dropped == 0 and no spill store:
        # the guard must not send the caller to a full_history() dead end
        ring = ExecutionTrace(capacity=4)
        fill(ring, 10)
        loaded = ExecutionTrace.from_dicts(ring.to_dicts())
        with pytest.raises(TruncatedTraceError) as err:
            ReplayPlayer(loaded, GdmModel("m")).start()
        assert not err.value.spilled
        assert "full_history" not in str(err.value)

    def test_resumed_engine_never_writes_live_checkpoints(self, tmp_path):
        # run A records 0..N with live checkpoints; run B resumes the
        # store with a fresh model that never saw run A's events — its
        # snapshots would lie to seek, so none may be written
        from repro.engine.engine import DebuggerEngine
        store = TraceStore(str(tmp_path / "s"), checkpoint_every=4)
        engine_a = DebuggerEngine(
            GdmModel("a"), trace=ExecutionTrace(capacity=8, spill=store))
        assert engine_a._live_checkpoints  # fresh store: snapshots valid
        for i in range(10):
            store.append({"seq": i, "t_target": i})
        store.close()
        resumed = TraceStore.open(str(tmp_path / "s"))
        engine_b = DebuggerEngine(
            GdmModel("b"), trace=ExecutionTrace(capacity=8, spill=resumed))
        assert not engine_b._live_checkpoints

    def test_engine_over_populated_trace_never_checkpoints(self, tmp_path):
        # a reconnect handoff: new engine, old trace — its fresh model
        # never applied the recorded events, so snapshots would lie
        from repro.engine.engine import DebuggerEngine
        store = TraceStore(str(tmp_path / "s"), checkpoint_every=4)
        trace = ExecutionTrace(capacity=64, spill=store)
        fill(trace, 10)
        assert not DebuggerEngine(GdmModel("b"),
                                  trace=trace)._live_checkpoints

    def test_empty_resumed_ring_still_guarded(self, tmp_path):
        # a trace resuming a 20-event store but holding nothing yet must
        # not replay as "empty history"
        store = TraceStore(str(tmp_path / "s"))
        first = ExecutionTrace(spill=store)
        fill(first, 20)
        store.close()
        resumed = ExecutionTrace(capacity=8, spill=TraceStore.open(store.root))
        assert resumed.first_seq == 20
        with pytest.raises(TruncatedTraceError) as err:
            ReplayPlayer(resumed, GdmModel("m")).start()
        assert err.value.missing == 20 and err.value.spilled

    def test_resumed_recorder_continues_the_seq_line(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=8)
        first = ExecutionTrace(capacity=4, spill=store)
        fill(first, 10)
        store.close()
        resumed_store = TraceStore.open(str(tmp_path / "s"))
        second = ExecutionTrace(capacity=4, spill=resumed_store)
        fill(second, 5)
        resumed_store.close()
        assert [r["seq"] for r in TraceStore.open(str(tmp_path / "s")).events()] \
            == list(range(15))

    def test_kernel_spill_defaults_to_bounded_ring(self, tmp_path):
        from repro.tracedb import DEFAULT_SPILL_CACHE_EVENTS
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel = DtmKernel(system, firmware,
                           record_spill=TraceStore(str(tmp_path / "j")))
        assert kernel.record_capacity == DEFAULT_SPILL_CACHE_EVENTS

    def test_seek_leaves_identical_frames_on_both_paths(self, tmp_path):
        store = TraceStore(str(tmp_path / "s"), segment_events=32)
        trace = ExecutionTrace(spill=store)
        fill(trace, 60)
        from repro.tracedb import StoredTrace, build_checkpoints
        build_checkpoints(store, GdmModel("m"), every=20)
        view = StoredTrace(store)
        gdm = GdmModel("m")
        player = ReplayPlayer(view, gdm)
        player.seek(45)
        assert len(player.frames) == 0
        player.seek(45, use_checkpoints=False)
        assert len(player.frames) == 0
        # stepping after a seek captures frames from the seek point on
        player.step()
        assert len(player.frames) == 1
