"""Tests for requirement monitors (the bug-detection machinery)."""

from repro.comm.protocol import Command, CommandKind
from repro.engine.checks import (
    DwellMonitor,
    HeartbeatMonitor,
    InitialStateMonitor,
    MonitorSuite,
    RangeMonitor,
    ResponseMonitor,
    SequenceMonitor,
    StateValueMonitor,
)

S = "state:lights.lamp."


def cmd(kind, path, value=0, t=0):
    return Command(kind, path, value, t_target=t, t_host=t)


def enter(state, t):
    return cmd(CommandKind.STATE_ENTER, f"{S}{state}", 0, t)


def sig(path, value, t):
    return cmd(CommandKind.SIG_UPDATE, path, value, t)


class TestSequenceMonitor:
    def make(self):
        return SequenceMonitor("seq", S, allowed={
            f"{S}RED": {f"{S}GREEN"},
            f"{S}GREEN": {f"{S}YELLOW"},
            f"{S}YELLOW": {f"{S}RED"},
        })

    def test_legal_cycle_passes(self):
        monitor = self.make()
        for t, state in enumerate(("GREEN", "YELLOW", "RED", "GREEN")):
            assert monitor.inspect(enter(state, t)) is None
        assert not monitor.violated

    def test_illegal_order_reported(self):
        monitor = self.make()
        monitor.inspect(enter("GREEN", 1))
        report = monitor.inspect(enter("RED", 2))
        assert report is not None
        assert "illegal state order" in report.message

    def test_first_state_seeds_tracking(self):
        monitor = self.make()
        assert monitor.inspect(enter("YELLOW", 1)) is None  # seeding only

    def test_other_groups_ignored(self):
        monitor = self.make()
        other = cmd(CommandKind.STATE_ENTER, "state:other.sm.X")
        assert monitor.inspect(other) is None


class TestRangeMonitor:
    def test_in_range_passes(self):
        monitor = RangeMonitor("r", "signal:light", 0, 2)
        assert monitor.inspect(sig("signal:light", 2, 1)) is None

    def test_out_of_range_reported(self):
        monitor = RangeMonitor("r", "signal:light", 0, 2)
        report = monitor.inspect(sig("signal:light", 5, 1))
        assert report is not None and "outside" in report.message

    def test_other_signals_ignored(self):
        monitor = RangeMonitor("r", "signal:light", 0, 2)
        assert monitor.inspect(sig("signal:btn", 99, 1)) is None


class TestResponseMonitor:
    def make(self, within=100):
        return ResponseMonitor(
            "resp",
            trigger=lambda c: c.path == "signal:btn" and c.value == 1,
            response=lambda c: c.path == "signal:light" and c.value == 2,
            within_us=within,
        )

    def test_timely_response_passes(self):
        monitor = self.make()
        monitor.inspect(sig("signal:btn", 1, 0))
        assert monitor.inspect(sig("signal:light", 2, 50)) is None
        assert not monitor.violated

    def test_late_response_reported(self):
        monitor = self.make()
        monitor.inspect(sig("signal:btn", 1, 0))
        report = monitor.inspect(sig("signal:light", 1, 500))
        assert report is not None

    def test_retrigger_after_response(self):
        monitor = self.make()
        monitor.inspect(sig("signal:btn", 1, 0))
        monitor.inspect(sig("signal:light", 2, 10))
        monitor.inspect(sig("signal:btn", 1, 20))
        report = monitor.inspect(sig("signal:btn", 0, 500))
        assert report is not None  # second trigger went unanswered


class TestDwellMonitor:
    def make(self):
        return DwellMonitor("dwell", f"{S}RED", S, lo_us=300, hi_us=500)

    def test_dwell_in_bounds_passes(self):
        monitor = self.make()
        monitor.inspect(enter("RED", 1000))
        assert monitor.inspect(enter("GREEN", 1400)) is None

    def test_too_short_reported(self):
        monitor = self.make()
        monitor.inspect(enter("RED", 1000))
        assert monitor.inspect(enter("GREEN", 1100)) is not None

    def test_too_long_reported(self):
        monitor = self.make()
        monitor.inspect(enter("RED", 1000))
        assert monitor.inspect(enter("GREEN", 1900)) is not None

    def test_other_states_not_measured(self):
        monitor = self.make()
        monitor.inspect(enter("GREEN", 0))
        assert monitor.inspect(enter("YELLOW", 5000)) is None


class TestStateValueMonitor:
    def make(self):
        return StateValueMonitor("sv", f"{S}GREEN", "signal:light", 1,
                                 within_us=100)

    def test_correct_value_passes(self):
        monitor = self.make()
        monitor.inspect(enter("GREEN", 0))
        assert monitor.inspect(sig("signal:light", 1, 10)) is None

    def test_wrong_value_reported(self):
        monitor = self.make()
        monitor.inspect(enter("GREEN", 0))
        report = monitor.inspect(sig("signal:light", 2, 10))
        assert report is not None

    def test_missing_update_reported_on_timeout(self):
        monitor = self.make()
        monitor.inspect(enter("GREEN", 0))
        report = monitor.inspect(cmd(CommandKind.TASK_START, "actor:x", 0, 500))
        assert report is not None and "never updated" in report.message


class TestHeartbeatMonitor:
    def make(self):
        return HeartbeatMonitor(
            "hb", lambda c: c.kind is CommandKind.STATE_ENTER, every_us=1000)

    def test_regular_beats_pass(self):
        monitor = self.make()
        for t in (100, 900, 1800):
            assert monitor.inspect(enter("RED", t)) is None

    def test_silence_reported_via_other_traffic(self):
        monitor = self.make()
        monitor.inspect(enter("RED", 100))
        report = monitor.inspect(cmd(CommandKind.TASK_START, "actor:x", 0, 2000))
        assert report is not None and "no matching event" in report.message

    def test_no_report_storm(self):
        monitor = self.make()
        monitor.inspect(enter("RED", 0))
        monitor.inspect(cmd(CommandKind.TASK_START, "actor:x", 0, 2000))
        assert monitor.inspect(
            cmd(CommandKind.TASK_START, "actor:x", 0, 2100)) is None


class TestInitialStateMonitor:
    def test_expected_first_state_passes(self):
        monitor = InitialStateMonitor("init", S, f"{S}GREEN")
        assert monitor.inspect(enter("GREEN", 10)) is None
        assert monitor.inspect(enter("RED", 20)) is None  # only first checked

    def test_wrong_first_state_reported(self):
        monitor = InitialStateMonitor("init", S, f"{S}GREEN")
        assert monitor.inspect(enter("YELLOW", 10)) is not None


class TestMonitorSuite:
    def test_aggregates_and_orders_reports(self):
        range_monitor = RangeMonitor("r", "signal:light", 0, 2)
        seq = SequenceMonitor("s", S, allowed={f"{S}RED": {f"{S}GREEN"}})
        suite = MonitorSuite([seq, range_monitor])
        seq.inspect(enter("RED", 5))
        seq.inspect(enter("YELLOW", 10))             # violation at t=10
        range_monitor.inspect(sig("signal:light", 9, 3))  # violation at t=3
        assert suite.any_violation
        assert suite.first_violation_time() == 3
        assert [r.t_us for r in suite.reports()] == [3, 10]
