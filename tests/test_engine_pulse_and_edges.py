"""Pulse decay semantics, codegen error paths, and misc edge coverage."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.codegen.lower_blocks import GenContext, NetworkCodegen
from repro.comdes.blocks import FunctionBlock, MooreBlock
from repro.comdes.dataflow import ComponentNetwork, PortRef
from repro.comdes.examples import traffic_light_system
from repro.comdes.reflect import system_to_model
from repro.comm.channel import DebugChannel, PassiveChannel, WatchSpec
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.protocol import Command, CommandKind
from repro.engine.engine import DebuggerEngine
from repro.engine.session import DebugSession
from repro.errors import CodegenError
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import Board, DebugPort
from repro.util.timeunits import ms


class FakeChannel(DebugChannel):
    def halt_target(self):
        pass

    def resume_target(self):
        pass


def engine_with_gdm():
    model = system_to_model(traffic_light_system())
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    channel = FakeChannel()
    return DebuggerEngine(gdm, channel=channel), channel, gdm


class TestPulseDecay:
    def test_pulse_lives_exactly_one_step(self):
        engine, channel, gdm = engine_with_gdm()
        link = next(l for l in gdm.links.values()
                    if l.source_path.startswith("trans:"))
        channel.deliver(Command(CommandKind.TRANS_FIRED, link.source_path, 0,
                                t_target=10, t_host=10))
        assert link.style.get("pulse") == "true"
        channel.deliver(Command(CommandKind.SIG_UPDATE, "signal:light", 1,
                                t_target=20, t_host=20))
        assert "pulse" not in link.style

    def test_highlight_survives_pulse_decay(self):
        engine, channel, gdm = engine_with_gdm()
        channel.deliver(Command(CommandKind.STATE_ENTER,
                                "state:lights.lamp.GREEN", 1,
                                t_target=10, t_host=10))
        channel.deliver(Command(CommandKind.SIG_UPDATE, "signal:light", 1,
                                t_target=20, t_host=20))
        assert gdm.element_by_path("state:lights.lamp.GREEN").highlighted


class MysteryBlock(FunctionBlock):
    """A block kind the code generator has never heard of."""

    kind = "mystery"

    def __init__(self, name):
        super().__init__(name, inputs=["u"], outputs=["y"])

    def behavior(self, inputs, state):
        return {"y": inputs["u"]}, state


class MysteryMoore(MooreBlock):
    kind = "mystery-moore"

    def __init__(self, name):
        super().__init__(name, inputs=[], outputs=["y"])

    def moore_output(self, state):
        return {"y": 0}

    def advance(self, inputs, state):
        return state


class TestCodegenErrorPaths:
    def _generate(self, block, input_ports=None):
        network = ComponentNetwork(
            "n", blocks=[block],
            input_ports=input_ports or {},
            output_ports={"y": PortRef(block.name, "y")},
        )
        ctx = GenContext(InstrumentationPlan.none())
        input_symbols = {}
        for port in network.input_ports:
            ctx.alloc(f"a.in.{port}", "input")
            input_symbols[port] = f"a.in.{port}"
        gen = NetworkCodegen(ctx, network, "a", "", input_symbols)
        gen.declare()
        gen.emit_step()

    def test_unknown_mealy_block_rejected(self):
        with pytest.raises(CodegenError):
            self._generate(MysteryBlock("m"),
                           input_ports={"u": [PortRef("m", "u")]})

    def test_unknown_moore_block_rejected(self):
        with pytest.raises(CodegenError):
            self._generate(MysteryMoore("m"))

    def test_emit_before_declare_rejected(self):
        network = ComponentNetwork(
            "n", blocks=[MysteryMoore("m")],
            output_ports={"y": PortRef("m", "y")},
        )
        ctx = GenContext(InstrumentationPlan.none())
        gen = NetworkCodegen(ctx, network, "a", "", {})
        with pytest.raises(CodegenError):
            gen.emit_step()

    def test_double_declare_rejected(self):
        network = ComponentNetwork(
            "n", blocks=[MysteryMoore("m")],
            output_ports={"y": PortRef("m", "y")},
        )
        ctx = GenContext(InstrumentationPlan.none())
        gen = NetworkCodegen(ctx, network, "a", "", {})
        gen.declare()
        with pytest.raises(CodegenError):
            gen.declare()


class TestNestedMachinePassiveWatch:
    def test_passive_watch_of_machine_inside_modal_mode(self):
        # The nested blinker (modal mode BLINK) is watchable through JTAG
        # using the same scope convention codegen allocates.
        from tests.test_codegen_nesting import nested_system
        system = nested_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        sim = Simulator()
        kernel = DtmKernel(system, firmware, sim=sim)
        board = kernel.board_of("node0")
        probe = JtagProbe(TapController(DebugPort(board)))
        machine = None
        from repro.engine.session import iter_blocks_with_scope
        from repro.comdes.blocks import StateMachineFB
        for scope, block in iter_blocks_with_scope(
                system.actor("nester").network):
            if isinstance(block, StateMachineFB):
                machine = (scope, block.machine)
        assert machine is not None
        scope, sm = machine
        channel = PassiveChannel(
            sim, probe, firmware,
            [WatchSpec.state_machine("nester", scope, sm)],
            poll_period_us=300,
        )
        channel.start()
        seen = []
        channel.subscribe(seen.append)
        kernel.run(ms(1) * 30)
        paths = {c.path for c in seen}
        assert paths <= {"state:nester.deep.BLINK.blink.ON",
                         "state:nester.deep.BLINK.blink.OFF"}
        assert paths  # the nested machine toggles while its mode is active


class TestCommandValueSemantics:
    def test_latency_and_equality(self):
        a = Command(CommandKind.USER, "signal:x", 5, t_target=10, t_host=25)
        b = Command(CommandKind.USER, "signal:x", 5, t_target=99, t_host=99)
        assert a.latency_us == 15
        assert a == b            # identity is (kind, path, value)
        assert hash(a) == hash(b)

    def test_default_host_time_is_target_time(self):
        command = Command(CommandKind.USER, "signal:x", 1, t_target=42)
        assert command.t_host == 42 and command.latency_us == 0
