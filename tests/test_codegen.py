"""Tests for the model-to-code transformation.

The central property: generated firmware and the reference interpreter
agree step-for-step on every example system, with and without
instrumentation.
"""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware, run_firmware_lockstep
from repro.codegen.lower_expr import lower_expr
from repro.comdes.examples import (
    blinker_system, cruise_control_system, traffic_light_system,
)
from repro.comdes.expr import band, const, ge, lnot, lt, maximum, minimum, var
from repro.comm.protocol import CommandKind
from repro.target.assembler import Assembler
from repro.target.board import Board
from repro.target.cpu import Cpu
from repro.target.isa import Instr
from repro.target.memory import MemoryMap, RAM_BASE
from repro.target.peripherals import Gpio

ALL_SYSTEMS = [blinker_system, traffic_light_system, cruise_control_system]


def eval_compiled(expr, env):
    """Compile an expression, run it on the CPU, return the stack top."""
    memory = MemoryMap(64)
    addresses = {}
    for i, (name, value) in enumerate(sorted(env.items())):
        addresses[name] = RAM_BASE + i
        memory.poke(RAM_BASE + i, value)
    asm = Assembler()
    lower_expr(asm, expr, lambda name: addresses[name])
    asm.emit("STORE", RAM_BASE + 60)
    asm.emit("HALT")
    cpu = Cpu(memory, Gpio())
    cpu.load(asm.assemble())
    cpu.reset_task(0)
    cpu.run()
    return memory.peek(RAM_BASE + 60)


class TestExpressionLowering:
    def test_arithmetic(self):
        expr = (var("a") + 3) * var("b") - const(4)
        env = {"a": 2, "b": 5}
        assert eval_compiled(expr, env) == expr.eval(env)

    def test_division_semantics_match(self):
        expr = var("a") // var("b")
        env = {"a": -7, "b": 2}
        assert eval_compiled(expr, env) == expr.eval(env) == -3

    def test_logic_and_comparisons(self):
        expr = band(ge(var("a"), 2), lnot(lt(var("b"), 0)))
        for a in (1, 2, 3):
            for b in (-1, 0, 1):
                env = {"a": a, "b": b}
                assert eval_compiled(expr, env) == expr.eval(env)

    def test_min_max(self):
        expr = maximum(minimum(var("a"), var("b")), const(0))
        env = {"a": -5, "b": 3}
        assert eval_compiled(expr, env) == expr.eval(env) == 0


class TestFirmwareEquivalence:
    @pytest.mark.parametrize("build", ALL_SYSTEMS)
    def test_uninstrumented_matches_interpreter(self, build):
        system = build()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        assert (run_firmware_lockstep(system, firmware, 80)
                == system.lockstep_run(80))

    @pytest.mark.parametrize("build", ALL_SYSTEMS)
    def test_fully_instrumented_matches_interpreter(self, build):
        system = build()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        assert (run_firmware_lockstep(system, firmware, 80)
                == system.lockstep_run(80))

    def test_instrumentation_does_not_change_symbols_semantics(self):
        system = traffic_light_system()
        clean = generate_firmware(system, InstrumentationPlan.none())
        full = generate_firmware(system, InstrumentationPlan.full())
        # Instrumented code is strictly larger.
        assert full.instruction_count() > clean.instruction_count()
        # Both lockstep histories agree.
        assert (run_firmware_lockstep(system, clean, 40)
                == run_firmware_lockstep(system, full, 40))


class TestInstrumentation:
    def collect_emits(self, plan, rounds=30):
        system = traffic_light_system()
        firmware = generate_firmware(system, plan)
        board = Board()
        run_firmware_lockstep(system, firmware, rounds, board=board)
        return firmware, board.cpu.emit_log

    def test_none_plan_emits_nothing(self):
        firmware, emits = self.collect_emits(InstrumentationPlan.none())
        assert emits == []
        assert not any(i.op == "EMIT" for i in firmware.code)

    def test_state_enter_emitted_on_change_only(self):
        firmware, emits = self.collect_emits(
            InstrumentationPlan(state_enter=True, signal_update=False))
        kinds = {kind for kind, _, _ in emits}
        assert kinds == {int(CommandKind.STATE_ENTER)}
        paths = {firmware.path_of_id(pid) for _, pid, _ in emits}
        # Only real state changes; self-loop dwell steps are silent.
        assert paths <= {f"state:lights.lamp.{s}"
                         for s in ("RED", "GREEN", "YELLOW")}

    def test_signal_update_emitted_on_change_only(self):
        firmware, emits = self.collect_emits(
            InstrumentationPlan(state_enter=False, signal_update=True),
            rounds=10)
        light_updates = [
            value for kind, pid, value in emits
            if firmware.path_of_id(pid) == "signal:light"
        ]
        # 10 rounds of the 4/4/2 cycle: GREEN at round 3, YELLOW at 7,
        # back to RED at 9 — three changes, dwell steps silent.
        assert light_updates == [1, 2, 0]

    def test_task_markers_carry_job_numbers(self):
        firmware, emits = self.collect_emits(
            InstrumentationPlan(state_enter=False, signal_update=False,
                                task_markers=True),
            rounds=3)
        starts = [value for kind, pid, value in emits
                  if kind == int(CommandKind.TASK_START)
                  and firmware.path_of_id(pid) == "actor:lights"]
        assert starts == [1, 2, 3]

    def test_transition_commands_name_fired_transition(self):
        firmware, emits = self.collect_emits(
            InstrumentationPlan(state_enter=False, signal_update=False,
                                transitions=True),
            rounds=5)
        paths = [firmware.path_of_id(pid) for kind, pid, _ in emits
                 if kind == int(CommandKind.TRANS_FIRED)]
        assert any(p.startswith("trans:lights.lamp.") for p in paths)


class TestGeneratedArtifacts:
    def test_symbols_cover_actor_io(self):
        firmware = generate_firmware(traffic_light_system())
        assert firmware.symbols.has("lights.in.btn")
        assert firmware.symbols.has("lights.out.light")
        assert firmware.symbols.has("lights.lamp.$_state")

    def test_entries_per_actor(self):
        system = cruise_control_system()
        firmware = generate_firmware(system)
        assert set(firmware.entries) == set(system.actors)

    def test_source_map_attributes_instructions(self):
        firmware = generate_firmware(traffic_light_system())
        lamp_pcs = [pc for pc, i in enumerate(firmware.code)
                    if i.src_path and "lights.lamp" in i.src_path]
        assert lamp_pcs  # lamp code is attributed

    def test_initial_state_in_data_image(self):
        system = traffic_light_system()
        firmware = generate_firmware(system)
        addr = firmware.symbols.addr_of("lights.lamp.$_state")
        # Initial state RED has index 0 => no explicit init entry needed,
        # but the board must still read 0 after loading.
        board = Board()
        board.load_firmware(firmware)
        assert board.memory.peek(addr) == 0

    def test_modal_and_nested_scopes_in_symbols(self):
        firmware = generate_firmware(cruise_control_system())
        nested = [s.name for s in firmware.symbols.symbols()
                  if "regulator.CRUISE" in s.name]
        assert any(name.endswith("pi.$acc") for name in nested)
