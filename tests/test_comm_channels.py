"""Tests for the active and passive debug channels."""

import pytest

from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import blinker_system, traffic_light_system
from repro.comm.channel import (
    ActiveChannel, CompositeChannel, PassiveChannel, WatchSpec,
)
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.protocol import Command, CommandKind
from repro.comm.rs232 import Rs232Link
from repro.errors import CommError
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import Board, DebugPort
from repro.util.timeunits import ms


def active_setup(system=None, plan=None, baud=115200):
    system = system if system is not None else traffic_light_system()
    firmware = generate_firmware(system,
                                 plan or InstrumentationPlan.full())
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim)
    channel = ActiveChannel(sim, kernel.board_of("node0"), firmware,
                            link=Rs232Link(baud))
    kernel.add_job_hook("node0", lambda actor, t: channel.begin_job(t))
    received = []
    channel.subscribe(received.append)
    return sim, kernel, channel, received


class TestActiveChannel:
    def test_commands_arrive_decoded_with_paths(self):
        sim, kernel, channel, received = active_setup()
        kernel.run(ms(100) * 12)
        assert received
        state_cmds = [c for c in received if c.kind is CommandKind.STATE_ENTER]
        assert any(c.path == "state:lights.lamp.GREEN" for c in state_cmds)

    def test_host_time_after_target_time(self):
        sim, kernel, channel, received = active_setup()
        kernel.run(ms(100) * 12)
        for command in received:
            assert command.t_host >= command.t_target
            assert command.latency_us >= 0

    def test_latency_grows_at_lower_baud(self):
        def mean_latency(baud):
            sim, kernel, channel, received = active_setup(baud=baud)
            kernel.run(ms(100) * 20)
            return sum(c.latency_us for c in received) / len(received)
        assert mean_latency(9600) > mean_latency(115200)

    def test_fifo_overrun_drops_frames(self):
        # A tiny FIFO + slow line: burst traffic must overflow.
        system = traffic_light_system()
        firmware = generate_firmware(system, InstrumentationPlan.full())
        sim = Simulator()
        boards = {"node0": Board(uart_fifo=12)}
        kernel = DtmKernel(system, firmware, sim=sim, boards=boards)
        channel = ActiveChannel(sim, kernel.board_of("node0"), firmware,
                                link=Rs232Link(300))
        kernel.add_job_hook("node0", lambda actor, t: channel.begin_job(t))
        kernel.run(ms(100) * 30)
        assert channel.frames_dropped > 0
        assert kernel.board_of("node0").uart.overruns == channel.frames_dropped

    def test_halt_resume_stalls_board(self):
        sim, kernel, channel, _ = active_setup()
        channel.halt_target()
        assert kernel.board_of("node0").stalled
        channel.resume_target()
        assert not kernel.board_of("node0").stalled


class TestPassiveChannel:
    def passive_setup(self, poll_period_us=500):
        system = blinker_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        sim = Simulator()
        kernel = DtmKernel(system, firmware, sim=sim)
        board = kernel.board_of("node0")
        probe = JtagProbe(TapController(DebugPort(board)))
        watches = [
            WatchSpec.state_machine("blinky", "blink",
                                    system.actor("blinky").network
                                    .block("blink").machine),
            WatchSpec.signal("blinky", "led", "led"),
        ]
        channel = PassiveChannel(sim, probe, firmware, watches,
                                 poll_period_us=poll_period_us)
        channel.start()
        received = []
        channel.subscribe(received.append)
        return sim, kernel, channel, received

    def test_detects_state_changes_without_instrumentation(self):
        sim, kernel, channel, received = self.passive_setup()
        kernel.run(ms(10) * 30)
        states = [c for c in received if c.kind is CommandKind.STATE_ENTER]
        assert states
        assert {c.path for c in states} <= {
            "state:blinky.blink.ON", "state:blinky.blink.OFF",
        }

    def test_signal_watches_report_values(self):
        sim, kernel, channel, received = self.passive_setup()
        kernel.run(ms(10) * 30)
        sig = [c for c in received if c.kind is CommandKind.SIG_UPDATE]
        assert {c.value for c in sig} == {0, 1}

    def test_latency_bounded_by_poll_period(self):
        sim, kernel, channel, received = self.passive_setup(poll_period_us=2000)
        kernel.run(ms(10) * 40)
        for command in received:
            # t_target is the poll instant; host delivery adds scan cost only.
            assert command.latency_us < 2000

    def test_zero_target_cycles(self):
        sim, kernel, channel, received = self.passive_setup()
        board = kernel.board_of("node0")
        cycles_with_probe = None
        kernel.run(ms(10) * 20)
        cycles_with_probe = board.cpu.cycles
        # Reference: same workload with no channel at all.
        system = blinker_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        kernel2 = DtmKernel(system, firmware, sim=Simulator())
        kernel2.run(ms(10) * 20)
        assert cycles_with_probe == kernel2.board_of("node0").cpu.cycles

    def test_unknown_watch_symbol_rejected(self):
        system = blinker_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        sim = Simulator()
        board = Board()
        board.load_firmware(firmware)
        probe = JtagProbe(TapController(DebugPort(board)))
        with pytest.raises(Exception):
            PassiveChannel(sim, probe, firmware,
                           [WatchSpec("ghost.symbol", lambda v: None)])

    def test_needs_at_least_one_watch(self):
        system = blinker_system()
        firmware = generate_firmware(system, InstrumentationPlan.none())
        board = Board()
        board.load_firmware(firmware)
        probe = JtagProbe(TapController(DebugPort(board)))
        with pytest.raises(CommError):
            PassiveChannel(Simulator(), probe, firmware, [])

    def test_double_start_rejected(self):
        sim, kernel, channel, _ = self.passive_setup()
        with pytest.raises(CommError):
            channel.start()


class TestCompositeChannel:
    def test_fans_in_children(self):
        composite = CompositeChannel()
        a, b = CompositeChannel(), CompositeChannel()  # any DebugChannel works
        composite.add(a)
        composite.add(b)
        received = []
        composite.subscribe(received.append)
        command = Command(CommandKind.USER, "signal:x", 1)
        a.deliver(command)
        b.deliver(command)
        assert len(received) == 2

    def test_watchspec_state_ignores_wild_index(self):
        from repro.comdes.examples import blinker_machine
        spec = WatchSpec.state_machine("a", "b", blinker_machine())
        assert spec.make_command(99) is None
        kind, path, value = spec.make_command(1)
        assert kind is CommandKind.STATE_ENTER
        assert path == "state:a.b.ON"
