"""Tests for the event bus and the ASCII text grid."""

import pytest

from repro.util.events import EventBus
from repro.util.textgrid import TextGrid


class TestEventBus:
    def test_publish_reaches_subscriber(self):
        bus = EventBus()
        received = []
        bus.subscribe("cmd", lambda **kw: received.append(kw))
        count = bus.publish("cmd", value=7)
        assert count == 1
        assert received == [{"value": 7}]

    def test_publish_without_subscribers_is_noop(self):
        bus = EventBus()
        assert bus.publish("nothing") == 0

    def test_handlers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda **kw: order.append("first"))
        bus.subscribe("t", lambda **kw: order.append("second"))
        bus.publish("t")
        assert order == ["first", "second"]

    def test_unsubscribe_removes_handler(self):
        bus = EventBus()
        hits = []
        handler = lambda **kw: hits.append(1)
        bus.subscribe("t", handler)
        bus.unsubscribe("t", handler)
        bus.publish("t")
        assert hits == []

    def test_unsubscribe_unknown_handler_raises(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.unsubscribe("t", lambda: None)

    def test_published_count_tracks_all_topics(self):
        bus = EventBus()
        bus.publish("a")
        bus.publish("b")
        assert bus.published_count == 2


class TestTextGrid:
    def test_put_and_get(self):
        grid = TextGrid(4, 3)
        grid.put(1, 2, "X")
        assert grid.get(1, 2) == "X"

    def test_out_of_bounds_put_is_clipped(self):
        grid = TextGrid(2, 2)
        grid.put(5, 5, "X")  # silently ignored
        assert "X" not in grid.render()

    def test_out_of_bounds_get_raises(self):
        grid = TextGrid(2, 2)
        with pytest.raises(IndexError):
            grid.get(2, 0)

    def test_text_is_written_horizontally(self):
        grid = TextGrid(10, 1)
        grid.text(2, 0, "abc")
        assert grid.render() == "  abc"

    def test_box_has_corners_and_label(self):
        grid = TextGrid(12, 5)
        grid.box(0, 0, 10, 4, label="RED")
        out = grid.render()
        assert out.splitlines()[0].startswith("+")
        assert "RED" in out

    def test_box_too_small_raises(self):
        grid = TextGrid(5, 5)
        with pytest.raises(ValueError):
            grid.box(0, 0, 1, 1)

    def test_zero_size_grid_raises(self):
        with pytest.raises(ValueError):
            TextGrid(0, 5)

    def test_render_strips_trailing_spaces(self):
        grid = TextGrid(8, 2)
        grid.put(0, 0, "a")
        assert grid.render() == "a\n"
