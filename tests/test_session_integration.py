"""Integration tests: the full Fig 6 workflow end-to-end, both channels."""

import pytest

from repro.comdes.examples import cruise_control_system, traffic_light_system
from repro.comm.protocol import CommandKind
from repro.engine.engine import EngineState
from repro.engine.breakpoints import StateEntryBreakpoint
from repro.engine.replay import ReplayPlayer
from repro.engine.session import DebugSession, default_watches, iter_blocks_with_scope
from repro.errors import DebuggerError
from repro.experiments.figures import (
    fig1_mdd_role, fig2_structural_view, fig3_gdm_metamodel,
    fig4_abstraction_guide, fig5_animated_model, fig6_execution_flow,
)
from repro.util.timeunits import ms


class TestWorkflowSteps:
    def test_five_steps_logged_in_order(self):
        session = DebugSession(traffic_light_system())
        session.setup()
        steps = [line.split("]")[0].strip("[") for line in session.workflow_log]
        assert steps == ["1", "2", "3", "4", "5"]

    def test_steps_enforce_prerequisites(self):
        session = DebugSession(traffic_light_system())
        with pytest.raises(DebuggerError):
            session.step3_abstraction()
        with pytest.raises(DebuggerError):
            session.step5_connect()
        with pytest.raises(DebuggerError):
            session.run(1000)

    def test_invalid_channel_kind_rejected(self):
        with pytest.raises(DebuggerError):
            DebugSession(traffic_light_system(), channel_kind="telepathy")


class TestActiveSession:
    @pytest.fixture(scope="class")
    def session(self):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        session.setup().run(ms(100) * 25)
        return session

    def test_commands_traced(self, session):
        assert len(session.trace) > 10

    def test_active_state_highlighted(self, session):
        highlighted = [e.source_path for e in session.gdm.elements.values()
                       if e.highlighted]
        assert len(highlighted) == 1
        assert highlighted[0].startswith("state:lights.lamp.")

    def test_snapshot_shows_highlight_marker(self, session):
        assert "*" in session.snapshot_ascii()

    def test_svg_snapshot_renders(self, session):
        svg = session.snapshot_svg()
        assert svg.startswith("<svg") and "RED" in svg

    def test_timing_diagram_lanes(self, session):
        diagram = session.timing_diagram()
        assert "state:lights.lamp" in diagram.lanes

    def test_trace_replay_equivalence(self, session):
        live = sorted(e.source_path for e in session.gdm.elements.values()
                      if e.highlighted)
        player = ReplayPlayer(session.trace, session.gdm)
        player.start()
        player.run_to_end()
        assert player.highlighted_paths() == live


class TestPassiveSession:
    @pytest.fixture(scope="class")
    def session(self):
        session = DebugSession(traffic_light_system(), channel_kind="passive",
                               poll_period_us=1000)
        session.setup().run(ms(100) * 25)
        return session

    def test_passive_code_is_clean(self, session):
        assert not any(i.op == "EMIT" for i in session.firmware.code)

    def test_states_still_observed(self, session):
        states = session.trace.events(kind=CommandKind.STATE_ENTER)
        assert states

    def test_probe_was_used(self, session):
        assert session.probes["node0"].operations > 0

    def test_active_and_passive_observe_same_state_sequence(self):
        active = DebugSession(traffic_light_system(), channel_kind="active")
        active.setup().run(ms(100) * 20)
        passive = DebugSession(traffic_light_system(), channel_kind="passive",
                               poll_period_us=500)
        passive.setup().run(ms(100) * 20)
        seq_active = [e.command.path for e in
                      active.trace.events(kind=CommandKind.STATE_ENTER)]
        seq_passive = [e.command.path for e in
                       passive.trace.events(kind=CommandKind.STATE_ENTER)]
        # Passive polling may lag but must see the same order of states.
        assert seq_passive == seq_active[:len(seq_passive)]
        assert len(seq_passive) >= len(seq_active) - 2


class TestModelBreakpoints:
    def test_breakpoint_pauses_target_and_stepping_resumes(self):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        session.setup()
        session.engine.breakpoints.add(
            StateEntryBreakpoint("state:lights.lamp.YELLOW"))
        session.run(ms(100) * 40)
        assert session.engine.state is EngineState.PAUSED
        # The target is stalled: jobs are being skipped.
        assert session.kernel.board_of("node0").stalled
        skipped_before = session.kernel.jobs_skipped
        session.run_for(ms(100) * 5)
        assert session.kernel.jobs_skipped > skipped_before
        # Highlight frozen at YELLOW while paused.
        highlighted = [e.source_path for e in session.gdm.elements.values()
                       if e.highlighted]
        assert highlighted == ["state:lights.lamp.YELLOW"]
        # Step one model event: engine pauses again after exactly one command.
        session.stepper.step(1)
        session.run_for(ms(100) * 20)
        assert session.engine.state is EngineState.PAUSED
        assert session.engine.commands_processed > 0

    def test_resume_after_breakpoint_continues_animation(self):
        session = DebugSession(traffic_light_system(), channel_kind="active")
        session.setup()
        session.engine.breakpoints.add(
            StateEntryBreakpoint("state:lights.lamp.GREEN"))
        session.run(ms(100) * 10)
        assert session.engine.state is EngineState.PAUSED
        session.engine.breakpoints.all()[0].enabled = False
        session.stepper.resume()
        before = len(session.trace)
        session.run_for(ms(100) * 10)
        assert len(session.trace) > before


class TestMultiNodeSession:
    def test_cruise_control_session_over_two_nodes(self):
        session = DebugSession(cruise_control_system(), channel_kind="active")
        session.setup().run(ms(20) * 60)
        assert len(session.channel.children) == 2
        modes = session.trace.events(path_prefix="state:controller.mode_logic")
        assert any(e.command.path.endswith("CRUISE") for e in modes)


class TestSessionHelpers:
    def test_iter_blocks_recurses_into_modal_modes(self):
        system = cruise_control_system()
        scopes = [scope for scope, _ in iter_blocks_with_scope(
            system.actor("controller").network)]
        assert "regulator" in scopes
        assert "regulator.CRUISE.pi" in scopes

    def test_default_watches_cover_states_and_outputs(self):
        system = traffic_light_system()
        watches = default_watches(system, "node0")
        symbols = {w.symbol for w in watches}
        assert "lights.lamp.$_state" in symbols
        assert "lights.out.light" in symbols


class TestFigureArtifacts:
    def test_fig1_and_fig2_render(self):
        assert "MODEL DEBUGGER" in fig1_mdd_role()
        assert "GDM (server)" in fig2_structural_view()

    def test_fig3_metamodel_diagram(self):
        ascii_art, svg = fig3_gdm_metamodel()
        assert "DebugModel" in ascii_art
        assert svg.startswith("<svg") and "GraphicalElement" in svg

    def test_fig4_guide_dialog(self):
        dialog = fig4_abstraction_guide()
        assert "State -> Circle" in dialog
        assert "Transition -> Arrow" in dialog

    def test_fig5_animated_snapshot(self):
        ascii_art, svg, session = fig5_animated_model()
        assert "*" in ascii_art          # a highlighted state
        assert svg.startswith("<svg")
        assert len(session.trace) > 0

    def test_fig6_workflow_text(self):
        text = fig6_execution_flow()
        for step in ("[1]", "[2]", "[3]", "[4]", "[5]"):
            assert step in text
