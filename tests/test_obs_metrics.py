"""Unit tests for the repro.obs core: registry, snapshots, spans.

The contracts under test (see ``repro/obs/__init__.py``):

* labeled series get-or-create identity, counter/gauge/histogram math;
* snapshots are canonical (sorted at every level), picklable plain
  data, and merge associatively — counters/histograms sum, gauges take
  the right-hand value (CampaignResult-style canonical fold);
* ``bind_stats`` makes an existing ``stats()`` dict a thin registry
  view: values read once per snapshot, ``label_keys`` entries become
  labels read at snapshot time (so wrapper kinds assigned *after*
  ``DebugLink.__init__`` are not frozen stale);
* spans are modeled-time tuples with a deterministic canonical sort;
* the module-global ``OBS`` holder is None/None when disabled and
  ``observed()`` restores prior state on exit.
"""

import pickle

import pytest

from repro.comm.link import DirectLink
from repro.obs import (
    OBS,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    SpanTracer,
    disable,
    enable,
    enabled,
    merge_snapshots,
    merge_spans,
    observed,
    span_order,
)
from repro.target.board import Board
from repro.target.memory import RAM_BASE


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with telemetry disabled."""
    disable()
    yield
    disable()


class TestInstruments:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x", plane="mem")
        b = reg.counter("x", plane="mem")
        c = reg.counter("x", plane="frame")
        assert a is b and a is not c
        a.inc()
        a.inc(4)
        assert a.value == 5 and c.value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a=1, b=2)
        b = reg.counter("x", b=2, a=1)
        assert a is b

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(7)
        h = reg.histogram("lat", bounds=(10, 100))
        for v in (1, 9, 10, 55, 1000):
            h.observe(v)
        assert g.value == 7
        assert h.count == 5 and h.sum == 1075
        assert h.counts == [3, 1, 1]  # <=10, <=100, overflow


class TestSnapshot:
    def test_snapshot_is_picklable_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("a", k="v").inc(2)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(5)
        snap = reg.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.to_dict() == snap.to_dict()

    def test_to_dict_sorted_and_roundtrips(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", b="2").inc()
        reg.counter("a", a="1").inc()
        d = reg.snapshot().to_dict()
        assert list(d["counters"]) == sorted(d["counters"])
        back = MetricsSnapshot.from_dict(d)
        assert back.to_dict() == d

    def test_merge_sums_counters_keeps_right_gauge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("c", k="v").inc(3)
        r2.counter("c", k="v").inc(4)
        r1.gauge("g").set(1)
        r2.gauge("g").set(9)
        r1.histogram("h").observe(5)
        r2.histogram("h").observe(500)
        s1, s2 = r1.snapshot(), r2.snapshot()
        merged = s1.merge(s2)
        assert merged.counter("c", k="v") == 7
        assert merged.gauge("g") == 9
        # merge is non-mutating
        assert s1.counter("c", k="v") == 3
        assert merge_snapshots([s1, s2]).to_dict() == merged.to_dict()

    def test_merge_rejects_histogram_bound_mismatch(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", bounds=(1, 2)).observe(1)
        r2.histogram("h", bounds=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            r1.snapshot().merge(r2.snapshot())

    def test_counter_total_and_series(self):
        reg = MetricsRegistry()
        reg.counter("c", k="a").inc(2)
        reg.counter("c", k="b").inc(5)
        snap = reg.snapshot()
        assert snap.counter_total("c") == 7
        assert snap.counter_total("missing") == 0
        assert len(snap.series("c")) == 2


class TestBindStats:
    def test_bound_stats_fold_as_counters(self):
        reg = MetricsRegistry()
        state = {"hits": 0, "misses": 0}
        reg.bind_stats("cache", lambda: state)
        state["hits"] = 11
        state["misses"] = 2
        snap = reg.snapshot()
        assert snap.counter("cache.hits") == 11
        assert snap.counter("cache.misses") == 2

    def test_label_keys_read_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"kind": "bare", "ops": 0}
        reg.bind_stats("link", lambda: state, label_keys=("kind",))
        state["kind"] = "chaos[bare]"  # wrapper renamed after binding
        state["ops"] = 3
        snap = reg.snapshot()
        assert snap.counter("link.ops", kind="chaos[bare]") == 3
        assert snap.counter("link.ops", kind="bare") == 0

    def test_owner_dedupe_is_idempotent(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        owner = object()
        reg.bind_stats("x", lambda: state, owner=owner)
        reg.bind_stats("x", lambda: state, owner=owner)
        assert reg.snapshot().counter("x.n") == 1

    def test_same_series_bindings_sum(self):
        reg = MetricsRegistry()
        reg.bind_stats("x", lambda: {"n": 2}, owner=object())
        reg.bind_stats("x", lambda: {"n": 5}, owner=object())
        assert reg.snapshot().counter("x.n") == 7

    def test_non_numeric_and_bool_values_skipped(self):
        reg = MetricsRegistry()
        reg.bind_stats("x", lambda: {"n": 2, "name": "hi", "up": True,
                                     "nested": {"a": 1}})
        snap = reg.snapshot()
        assert snap.counter("x.n") == 2
        assert snap.counter_total("x.name") == 0
        assert snap.counter_total("x.up") == 0

    def test_link_stats_parity(self):
        """The link.* series are exactly DebugLink.stats(), unchanged."""
        reg, _ = enable(spans=False)
        link = DirectLink(Board())
        link.read_word(RAM_BASE)
        link.read_word(RAM_BASE + 1)
        stats = link.stats()
        snap = reg.snapshot()
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            assert snap.counter(f"link.{key}", kind=stats["kind"],
                                label=stats["label"]) == value
        assert reg is OBS.metrics


class TestSpans:
    def test_emit_and_canonical_snapshot(self):
        tr = SpanTracer()
        tr.emit("b", ts_us=10, dur_us=5, track=("node", "n1"))
        tr.emit("a", ts_us=20, track=("node", "n0"), args={"z": 1, "a": 2})
        spans = tr.snapshot()
        assert spans == sorted(spans, key=span_order)
        # the total order reads in modeled-time order, lanes interleaved
        assert spans[0].ts_us == 10 and spans[0].track == ("node", "n1")
        # args dicts are canonicalized to sorted tuples
        assert spans[1].args == (("a", 2), ("z", 1))

    def test_merge_spans_deterministic(self):
        t1, t2 = SpanTracer(), SpanTracer()
        t1.emit("x", ts_us=5)
        t2.emit("x", ts_us=1)
        merged = merge_spans([t1.snapshot(), t2.snapshot()])
        assert merged == merge_spans([t2.snapshot(), t1.snapshot()])
        assert all(isinstance(s, Span) for s in merged)

    def test_merge_spans_total_order_on_mixed_arg_types(self):
        # ties through (ts, dur, track, name, cat) used to fall into
        # comparing args values, which TypeErrors on mixed types; the
        # span_order key must survive any args payload and stay
        # byte-stable regardless of arrival order
        a = Span(("n", "t"), "x", "", 5, 1, (("k", None),))
        b = Span(("n", "t"), "x", "", 5, 1, (("k", 3),))
        c = Span(("n", "t"), "x", "", 5, 1, (("k", "3"),))
        one = merge_spans([[a, b], [c]])
        two = merge_spans([[c], [b, a]])
        assert one == two
        assert [s.ts_us for s in one] == [5, 5, 5]

    def test_spans_picklable(self):
        tr = SpanTracer()
        tr.emit("x", ts_us=1, args={"k": "v"})
        assert pickle.loads(pickle.dumps(tr.snapshot())) == tr.snapshot()


class TestRuntimeHolder:
    def test_disabled_by_default(self):
        assert OBS.metrics is None and OBS.spans is None
        assert not enabled()

    def test_enable_disable(self):
        reg, tracer = enable()
        assert OBS.metrics is reg and OBS.spans is tracer
        assert enabled()
        disable()
        assert OBS.metrics is None and OBS.spans is None

    def test_observed_restores_prior_state(self):
        with observed() as (reg, tracer):
            assert OBS.metrics is reg and OBS.spans is tracer
        assert OBS.metrics is None and OBS.spans is None
        outer, _ = enable(spans=False)
        with observed():
            assert OBS.metrics is not outer
        assert OBS.metrics is outer
        assert OBS.spans is None

    def test_partial_enable(self):
        reg, tracer = enable(spans=False)
        assert reg is not None and tracer is None
        assert OBS.spans is None
