"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, fired.append, "late")
        sim.schedule(10, fired.append, "early")
        sim.schedule(20, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, "first")
        sim.schedule(5, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 30:
                sim.schedule(10, chain)

        sim.schedule(10, chain)
        sim.run()
        assert fired == [10, 20, 30]


class TestRunUntil:
    def test_run_until_respects_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "in")
        sim.schedule(100, fired.append, "out")
        executed = sim.run_until(50)
        assert executed == 1
        assert fired == ["in"]
        assert sim.now == 50

    def test_run_until_cannot_go_backwards(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(ValueError):
            sim.run_until(50)

    def test_boundary_event_included(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, fired.append, "edge")
        sim.run_until(50)
        assert fired == ["edge"]


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now))
        sim.run_until(45)
        assert ticks == [10, 20, 30, 40]

    def test_every_with_custom_start(self):
        sim = Simulator()
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now), start=5)
        sim.run_until(30)
        assert ticks == [5, 15, 25]

    def test_every_rejects_nonpositive_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.every(0, lambda: None)

    def test_runaway_guard_raises(self):
        sim = Simulator()
        sim.every(1, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestRngStreams:
    def test_streams_are_deterministic(self):
        a = RngStreams(42).stream("workload")
        b = RngStreams(42).stream("workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RngStreams(42)
        first = streams.stream("a").random()
        # Drawing from stream b must not perturb stream a's sequence.
        fresh = RngStreams(42)
        fresh.stream("b").random()
        assert fresh.stream("a").random() == first

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_reseed_clears_streams(self):
        streams = RngStreams(1)
        before = streams.stream("x").random()
        streams.reseed(1)
        assert streams.stream("x").random() == before
