"""Tests for actors, systems, validation, examples and reflection."""

import pytest

from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import GainFB, SequenceFB
from repro.comdes.dataflow import ComponentNetwork, PortRef
from repro.comdes.examples import (
    blinker_system, cruise_control_system, traffic_light_system,
)
from repro.comdes.metamodel import comdes_metamodel
from repro.comdes.reflect import collect_state_paths, system_to_model
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.comdes.validate import system_problems, validate_system
from repro.errors import ModelError, ValidationError
from repro.meta.serialize import model_from_dict, model_to_dict
from repro.meta.validate import validate_model


class TestTaskSpec:
    def test_deadline_defaults_to_period(self):
        task = TaskSpec(period_us=1000)
        assert task.deadline_us == 1000

    def test_invalid_period_rejected(self):
        with pytest.raises(ModelError):
            TaskSpec(period_us=0)

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ModelError):
            TaskSpec(period_us=100, deadline_us=200)

    def test_negative_offset_rejected(self):
        with pytest.raises(ModelError):
            TaskSpec(period_us=100, offset_us=-1)


class TestActorBinding:
    def passthrough_network(self):
        return ComponentNetwork(
            "pass", blocks=[GainFB("g", num=1)],
            input_ports={"u": [PortRef("g", "u")]},
            output_ports={"y": PortRef("g", "y")},
        )

    def test_unbound_input_port_rejected(self):
        with pytest.raises(ModelError):
            Actor("a", self.passthrough_network(), TaskSpec(1000))

    def test_unknown_port_binding_rejected(self):
        with pytest.raises(ModelError):
            Actor("a", self.passthrough_network(), TaskSpec(1000),
                  inputs={"ghost": "sig"})

    def test_signal_maps_invert(self):
        actor = Actor("a", self.passthrough_network(), TaskSpec(1000),
                      inputs={"u": "in_sig"}, outputs={"y": "out_sig"})
        assert actor.consumed_signals() == {"in_sig": "u"}
        assert actor.produced_signals() == {"out_sig": "y"}


class TestSystemValidation:
    def test_examples_validate_cleanly(self):
        for system in (blinker_system(), traffic_light_system(),
                       cruise_control_system()):
            validate_system(system)

    def test_duplicate_signal_rejected(self):
        with pytest.raises(ModelError):
            System("s", signals=[Signal("x"), Signal("x")], actors=[])

    def test_unknown_signal_binding_reported(self):
        net = ComponentNetwork(
            "stim", blocks=[SequenceFB("s", values=[1])],
            output_ports={"y": PortRef("s", "y")},
        )
        actor = Actor("a", net, TaskSpec(1000), outputs={"y": "ghost"})
        system = System("s", signals=[Signal("real")], actors=[actor])
        problems = system_problems(system)
        assert any("ghost" in p for p in problems)

    def test_multiple_producers_reported(self):
        def stim(name):
            net = ComponentNetwork(
                f"net_{name}", blocks=[SequenceFB("s", values=[1])],
                output_ports={"y": PortRef("s", "y")},
            )
            return Actor(name, net, TaskSpec(1000), outputs={"y": "shared"})
        system = System("s", signals=[Signal("shared")],
                        actors=[stim("a1"), stim("a2")])
        with pytest.raises(ValidationError):
            validate_system(system)

    def test_untouched_signal_reported(self):
        system = System("s", signals=[Signal("orphan")], actors=[])
        assert any("orphan" in p for p in system_problems(system))


class TestLockstepSemantics:
    def test_blinker_led_waveform(self):
        leds = [r["led"] for r in blinker_system().lockstep_run(12)]
        assert leds == [0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0]

    def test_traffic_light_progression(self):
        history = traffic_light_system().lockstep_run(12)
        lights = [r["light"] for r in history]
        assert lights[0:4] == [0, 0, 0, 1]  # red phase then green
        assert 2 in lights                   # yellow eventually appears

    def test_cruise_control_engages_and_cancels(self):
        history = cruise_control_system().lockstep_run(100)
        modes = [r["mode"] for r in history]
        assert modes[5] == 1         # engaged after the scripted set press
        assert modes[60] == 1        # still cruising
        assert modes[90] == 0        # cancelled by the scripted cancel press

    def test_cruise_control_regulates_speed(self):
        history = cruise_control_system().lockstep_run(80)
        setpoint_era = [r["speed"] for r in history[30:70]]
        # During steady cruise the speed varies by at most a few units.
        assert max(setpoint_era) - min(setpoint_era) <= 5

    def test_overrides_force_signal(self):
        system = blinker_system()
        history = system.lockstep_run(3, overrides={"led": [9, 9, 9]})
        # Override is applied before actors run; blinky then republishes.
        assert history[0]["led"] in (0, 1)

    def test_determinism(self):
        a = cruise_control_system().lockstep_run(50)
        b = cruise_control_system().lockstep_run(50)
        assert a == b


class TestReflection:
    def test_reflective_model_validates(self):
        model = system_to_model(cruise_control_system())
        validate_model(model)

    def test_reflects_all_actors_and_signals(self):
        system = cruise_control_system()
        model = system_to_model(system)
        assert len(model.objects_of("Actor")) == len(system.actors)
        assert len(model.objects_of("Signal")) == len(system.signals)

    def test_state_machine_reflected_with_transitions(self):
        model = system_to_model(traffic_light_system())
        states = model.objects_of("State")
        transitions = model.objects_of("Transition")
        assert {s.get("name") for s in states} == {"RED", "GREEN", "YELLOW"}
        assert len(transitions) == 7
        for t in transitions:
            assert t.ref("source") in states
            assert t.ref("target") in states

    def test_paths_are_unique(self):
        model = system_to_model(cruise_control_system())
        paths = [obj.get("path") for obj in model.all_objects()]
        assert len(paths) == len(set(paths))

    def test_modal_modes_reflected(self):
        model = system_to_model(cruise_control_system())
        modes = model.objects_of("Mode")
        assert {m.get("name") for m in modes} == {"OFF", "CRUISE"}

    def test_reflective_model_serializes(self):
        model = system_to_model(traffic_light_system())
        restored = model_from_dict(model_to_dict(model), comdes_metamodel())
        assert model_to_dict(restored) == model_to_dict(model)

    def test_collect_state_paths(self):
        paths = collect_state_paths(traffic_light_system())
        assert "state:lights.lamp.RED" in paths
        assert len(paths) == 3
