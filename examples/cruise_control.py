"""Cruise control: the paper's heterogeneous workload, debugged live.

The system mixes every COMDES construct the paper names: a state-machine
function block (mode logic), a modal block whose CRUISE mode contains a PI
dataflow network, and a plant actor on a second node — "a state instance
invokes a particular instance of a dataflow model".

This example sets a model-level breakpoint on the CRUISE state, steps
through model events, then lets the system run and checks the requirement
monitors stayed quiet.

Run:  python examples/cruise_control.py
"""

from repro import DebugSession, cruise_control_system, ms
from repro.engine.breakpoints import StateEntryBreakpoint
from repro.experiments.requirements import cruise_monitor_suite


def main() -> None:
    system = cruise_control_system()
    print(f"System: {system!r}")
    for actor in system.actors.values():
        print(f"  {actor!r}")

    session = DebugSession(system, channel_kind="active")
    session.setup()

    # Requirements attached as model-level monitors.
    suite = cruise_monitor_suite()
    suite.attach(session.engine)

    # Pause the world the instant the controller engages.
    session.engine.breakpoints.add(
        StateEntryBreakpoint("state:controller.mode_logic.CRUISE"))

    session.run(ms(20) * 200)
    print(f"\nBreakpoint: engine is {session.engine.state.name} at "
          f"t={session.sim.now / 1000:.0f}ms "
          f"(target stalled: {session.kernel.board_of('node0').stalled})")
    print("Debug model at the pause:")
    print(session.snapshot_ascii())

    # Step three model events, watching the animation move.
    session.engine.breakpoints.all()[0].enabled = False
    for step in range(3):
        session.stepper.step(1)
        session.run_for(ms(20) * 30)
        last = session.trace[len(session.trace) - 1]
        print(f"step {step + 1}: {last.command.kind.name} "
              f"{last.command.path} = {last.command.value}")

    # Free-run to the end of the scenario.
    session.stepper.resume()
    session.run_for(ms(20) * 120)

    print(f"\nTrace: {len(session.trace)} commands over "
          f"{session.trace.duration_us() / 1000:.0f}ms")
    print("Signal values seen by node0:",
          {s: session.kernel.signal_value('node0', s)
           for s in ("mode", "speed", "throttle")})
    print("Requirement monitors:",
          "all quiet" if not suite.any_violation
          else [str(r) for r in suite.reports()])
    print("\nTiming diagram:\n")
    print(session.timing_diagram().render_ascii(68))


if __name__ == "__main__":
    main()
