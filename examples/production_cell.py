"""Production cell: a cross-actor safety interlock, and bug classification.

A feeder, a conveyor and a press cooperate through handshake signals. The
system's safety requirement — *the press must never close while the belt is
running* — spans two actors, which makes it invisible to variable-level
watchpoints but natural for a model-level monitor.

The example then injects a fault, lets the monitors find it, and uses the
differential bug classifier (the paper's "future work" on differentiating
bug types) to tell the user whether to fix the model or the toolchain.

Run:  python examples/production_cell.py
"""

from repro import DebugSession, sec
from repro.codegen import InstrumentationPlan, generate_firmware
from repro.comdes.examples import production_cell_system
from repro.engine.classify import classify_bug
from repro.experiments.requirements import production_cell_monitor_suite
from repro.faults.design import inject_design_fault
from repro.faults.implementation import inject_implementation_fault


def debug_run(system, label=""):
    """Run a monitored debug session; returns (session, suite)."""
    session = DebugSession(system, channel_kind="active")
    session.setup()
    suite = production_cell_monitor_suite()
    suite.attach(session.engine)
    session.run(sec(6))
    verdict = "QUIET" if not suite.any_violation else "VIOLATION"
    print(f"  [{label}] monitors: {verdict}; "
          f"{len(session.trace)} commands traced")
    return session, suite


def main() -> None:
    print("Nominal run — all six requirements (incl. S1 interlock):")
    session, suite = debug_run(production_cell_system(), label="nominal")
    print("\nTiming diagram of one handshake period:\n")
    print(session.timing_diagram().render_ascii(64))

    # --- A design error ----------------------------------------------------
    mutant, fault = inject_design_fault(production_cell_system(),
                                        "wrong_target", seed=2)
    print(f"\nInjected (unknown to the user): {fault.description}")
    _, suite = debug_run(mutant, label="faulty model")
    if suite.any_violation:
        report = suite.reports()[0]
        print(f"  first violation: [{report.monitor}] {report.message}")
        firmware = generate_firmware(mutant, InstrumentationPlan.none())
        verdict = classify_bug(mutant, firmware)
        print(f"  classifier: {verdict.verdict.value.upper()} — {verdict.detail}")

    # --- An implementation error -------------------------------------------
    base = production_cell_system()
    clean_firmware = generate_firmware(base, InstrumentationPlan.none())
    bad_firmware, fault = inject_implementation_fault(clean_firmware,
                                                      "inverted_branch", 1)
    print(f"\nInjected (unknown to the user): {fault.description}")
    verdict = classify_bug(base, bad_firmware)
    print(f"  classifier: {verdict.verdict.value.upper()} — {verdict.detail}")
    if verdict.divergence:
        d = verdict.divergence
        print(f"  first divergence: round {d.round_index}, signal "
              f"'{d.signal}': model says {d.model_value}, target produced "
              f"{d.target_value}")
    print("\nModel is innocent — regenerate/fix the code, don't redesign.")


if __name__ == "__main__":
    main()
