"""Quickstart: debug a traffic-light model at the model level.

Runs the paper's whole loop in ~30 lines: model -> generated code on a
virtual board -> GDM via abstraction -> live animation over the active
command interface -> timing diagram.

Run:  python examples/quickstart.py
"""

from repro import DebugSession, ms, traffic_light_system


def main() -> None:
    # One call per Fig 6 step (setup() chains steps 1-5 with defaults).
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup()
    print("Workflow (paper Fig 6):")
    print(session.workflow_text())

    # Let the embedded application run for 2 simulated seconds.
    session.run(ms(100) * 20)

    print(f"\nTraced {len(session.trace)} model-level commands; "
          f"engine is {session.engine.state.name}.")
    print("\nDebug model with the active state highlighted (*...*):\n")
    print(session.snapshot_ascii())

    print("\nTiming diagram of the recorded trace:\n")
    print(session.timing_diagram().render_ascii(64))


if __name__ == "__main__":
    main()
