"""Fault hunt: find an injected design error with the model debugger.

Injects a wrong-target transition into the traffic light (the kind of slip
a modeler actually makes), attaches the requirement monitors, and shows how
the violation surfaces at the model level — then contrasts with what the
code-level baseline debugger sees for the same fault.

Run:  python examples/fault_hunt.py
"""

from repro import DebugSession, SourceDebugger, ms, sec, traffic_light_system
from repro.experiments.requirements import (
    traffic_light_code_watches,
    traffic_light_monitor_suite,
)
from repro.faults.design import inject_design_fault


def main() -> None:
    mutant, fault = inject_design_fault(traffic_light_system(),
                                        "wrong_target", seed=1)
    print(f"Injected fault: {fault.description}")
    print("(the developer does not know this — they just see odd behaviour)\n")

    # --- Model-level debugging session ------------------------------------
    session = DebugSession(mutant, channel_kind="active")
    session.setup()
    suite = traffic_light_monitor_suite()
    suite.attach(session.engine)
    session.run(sec(4))

    print("Model debugger verdict:")
    if suite.any_violation:
        first = suite.reports()[0]
        print(f"  BUG FOUND at t={first.t_us / 1000:.0f}ms by monitor "
              f"[{first.monitor}]:")
        print(f"    {first.message}")
        print(f"    triggering command: {first.command.kind.name} "
              f"{first.command.path}")
        # Mark the offending element on the debug model.
        element = session.gdm.element_by_path(first.command.path)
        if element is not None:
            element.style["error"] = "true"
    else:
        print("  no violation observed (try a longer run)")

    print("\nDebug model (the faulty element marked !...!):\n")
    print(session.snapshot_ascii())

    # --- Code-level baseline on the same fault -----------------------------
    from repro.codegen import InstrumentationPlan, generate_firmware
    from repro.target.board import Board
    firmware = generate_firmware(mutant, InstrumentationPlan.none())
    board = Board()
    board.load_firmware(firmware)
    debugger = SourceDebugger(board, firmware)
    for symbol, predicate, description in traffic_light_code_watches()[:4]:
        debugger.watch(symbol, predicate, description)
    # Simulate the same 4 seconds of jobs at the code level.
    for _ in range(40):
        debugger.run_task("pedestrian")
        debugger.run_task("lights")
    print("\nCode debugger verdict (4 hardware watchpoints, value ranges):")
    if debugger.hits:
        print(f"  {len(debugger.hits)} watchpoint hits")
    else:
        print("  nothing — every variable stayed in its legal range.")
        print("  The fault is a *sequencing* error, invisible to range "
              "watches:\n  exactly the gap GMDF closes.")


if __name__ == "__main__":
    main()
