"""Passive debugging: watch clean production code through JTAG.

The paper's key argument for the passive interface: "when using JTAG, a
command interface is established without any code modifications". This
example debugs a firmware image with *zero* EMIT instructions by scanning
the state variable and output words through a faithful IEEE 1149.1 TAP
controller, and proves the target spent exactly as many cycles as an
undebugged run.

Run:  python examples/jtag_passive_monitor.py
"""

from repro import (
    DebugSession,
    DtmKernel,
    InstrumentationPlan,
    generate_firmware,
    ms,
    traffic_light_system,
)
from repro.comm.protocol import CommandKind


def main() -> None:
    session = DebugSession(traffic_light_system(), channel_kind="passive",
                           poll_period_us=500)
    session.setup()

    emits = sum(1 for i in session.firmware.code if i.op == "EMIT")
    print(f"Firmware: {session.firmware.instruction_count()} instructions, "
          f"{emits} EMIT instructions (production-clean)")
    print("Monitored variables (the paper's 'critical variables'):")
    for node, probe in session.probes.items():
        print(f"  node {node}: probe at TCK={probe.tck_hz / 1e6:.0f}MHz "
              f"over USB")

    session.run(ms(100) * 30)

    states = session.trace.events(kind=CommandKind.STATE_ENTER)
    print(f"\nObserved {len(states)} state changes purely by memory scan:")
    for event in states[:6]:
        print(f"  t={event.command.t_host / 1000:7.1f}ms  "
              f"{event.command.path}")
    print("  ...")

    # The zero-overhead proof: an identical run without any debugger.
    reference = traffic_light_system()
    firmware = generate_firmware(reference, InstrumentationPlan.none())
    kernel = DtmKernel(reference, firmware)
    kernel.run(ms(100) * 30)
    debugged_cycles = session.kernel.board_of("node0").cpu.cycles
    clean_cycles = kernel.board_of("node0").cpu.cycles
    probe = session.probes["node0"]
    print(f"\nTarget cycles with passive debugger : {debugged_cycles}")
    print(f"Target cycles without any debugger  : {clean_cycles}")
    print(f"Extra target cost                   : "
          f"{debugged_cycles - clean_cycles} cycles")
    print(f"Host-side cost                      : {probe.operations} TAP "
          f"operations, {probe.tap.tck_count} TCK cycles")

    print("\nModel view after the run:\n")
    print(session.snapshot_ascii())


if __name__ == "__main__":
    main()
