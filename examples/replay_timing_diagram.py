"""Trace recording, replay, and the timing diagram.

"In real-time embedded applications, model-level animation might occur in
milliseconds. Therefore, GDM animation will trace model-level behavior and
always make a record of the execution trace. The user can then monitor the
application's behavior via a replay function associated with a timing
diagram."

This example records a live session, serializes the trace (as the prototype
would save a trace file), restores it, replays at "human speed" with seek,
and renders the timing diagram.

Run:  python examples/replay_timing_diagram.py
"""

import json

from repro import DebugSession, ReplayPlayer, TimingDiagram, ms, traffic_light_system
from repro.engine.trace import ExecutionTrace


def main() -> None:
    # Record a live debug session.
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup().run(ms(100) * 30)
    print(f"Recorded {len(session.trace)} events over "
          f"{session.trace.duration_us() / 1000:.0f}ms simulated time")

    # Serialize the trace like a saved trace file, then restore it.
    blob = json.dumps(session.trace.to_dicts())
    restored = ExecutionTrace.from_dicts(json.loads(blob))
    print(f"Trace file: {len(blob)} bytes JSON, restored "
          f"{len(restored)} events")

    # Replay onto the same debug model, pausing at interesting moments.
    player = ReplayPlayer(restored, session.gdm)
    player.start()
    print("\nReplaying (one line per state change):")
    while True:
        event = player.step()
        if event is None:
            break
        if event.command.kind.name == "STATE_ENTER":
            frame = player.frames[len(player.frames) - 1]
            print(f"  t={event.command.t_host / 1000:7.1f}ms  "
                  f"highlight -> {', '.join(frame.highlighted())}")

    # Seek: rebuild the display as of the 5th event.
    player.seek(5)
    print(f"\nAfter seek(5) the model shows: {player.highlighted_paths()}")

    # The timing diagram associated with the replay.
    diagram = TimingDiagram(restored)
    print("\nTiming diagram:\n")
    print(diagram.render_ascii(64))

    with open("trace_replay.svg", "w") as handle:
        handle.write(diagram.render_svg())
    print("\nSVG timing diagram written to trace_replay.svg")


if __name__ == "__main__":
    main()
