"""Legacy entry point for environments without PEP 660 editable support.

All metadata and the src layout live in ``pyproject.toml``; setuptools >= 61
reads them on this path too. Use ``pip install -e .`` normally; on a bare
setuptools toolchain (no ``wheel``, no network for build isolation) run
``python setup.py develop`` instead — both make ``repro`` importable from
``src/``.
"""

from setuptools import setup

setup()
