"""Shim for environments whose setuptools lacks PEP 660 editable support."""

from setuptools import setup

setup()
